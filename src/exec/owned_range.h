// Closed-form owned iteration ranges.
//
// The interpreter decides ownership by evaluating cg::iterationOwner for
// every iteration of every parallel loop — an O(trip count) stream of
// divisions and clamps per processor per loop execution.  For the common
// partition shapes that test is invertible: the set of iterations a
// processor owns is a single contiguous interval (block partitions) or a
// single stride-P progression (cyclic partitions), computable in O(1) from
// the loop bounds.  The functions here produce those ranges; each one's
// membership must match the corresponding ownership test exactly —
// lowered_exec_test pins them against cg::iterationOwner, including the
// edge cases (empty ranges, more processors than iterations, negative
// lower bounds).
#pragma once

#include <algorithm>

#include "support/checked_int.h"

namespace spmd::exec {

/// Iterations `begin, begin + step, ...` up to and including `end`
/// (empty when begin > end).
struct IterRange {
  i64 begin = 0;
  i64 end = -1;
  i64 step = 1;

  bool empty() const { return begin > end; }
};

inline IterRange emptyRange() { return IterRange{0, -1, 1}; }

/// Owned range under clamped block ownership of `i + c0`:
///   owner(i) = clamp(floorDiv(i + c0, block), 0, nprocs - 1).
/// Covers BlockRange loop partitions (c0 = 0, template-aligned) and
/// owner-computes over a Block distribution with a unit loop-index
/// coefficient (c0 = subscript rest - alignOffset).  The clamp means
/// processor 0 additionally owns everything left of its block and the last
/// processor everything right of its block.
inline IterRange ownedBlockUnit(i64 lb, i64 ub, i64 c0, i64 block, int tid,
                                int nprocs) {
  // Checked arithmetic: `tid * block - c0` can exceed int64 for
  // pathological bounds or alignment offsets, and a silently wrapped
  // boundary would hand iterations to the wrong processor (a data race,
  // not a crash).  Trap instead (spmd::Error).
  i64 begin = lb;
  i64 end = ub;
  if (tid > 0)
    begin = std::max(begin, subChecked(mulChecked(tid, block), c0));
  if (tid < nprocs - 1)
    end = std::min(
        end, subChecked(subChecked(mulChecked(tid + 1, block), 1), c0));
  return IterRange{begin, end, 1};
}

/// Owned range under cyclic ownership of `i + c0`:
///   owner(i) = mod(i + c0, nprocs)   (mathematical mod, always >= 0).
/// Covers CyclicRange loop partitions (c0 = -lb) and owner-computes over a
/// Cyclic distribution with a unit loop-index coefficient.
inline IterRange ownedCyclicUnit(i64 lb, i64 ub, i64 c0, int tid,
                                 int nprocs) {
  const i64 P = nprocs;
  // `lb + c0` can overflow (c0 comes from evaluated subscript forms);
  // compute it checked so near-INT64 bounds trap instead of wrapping into
  // a wrong start processor.
  i64 rem = addChecked(lb, c0) % P;
  if (rem < 0) rem += P;
  i64 delta = tid - rem;
  if (delta < 0) delta += P;
  return IterRange{addChecked(lb, delta), ub, P};
}

/// Owned range under the fallback partition (no loop partition, no usable
/// partition reference): the iteration span itself is block-distributed,
///   owner(i) = min(floorDiv(i - lb, ceilDiv(span, nprocs)), nprocs - 1).
inline IterRange ownedFallbackBlock(i64 lb, i64 ub, int tid, int nprocs) {
  if (lb > ub) return emptyRange();
  i64 span = addChecked(subChecked(ub, lb), 1);
  i64 block = ceilDiv(span, nprocs);
  i64 begin = addChecked(lb, mulChecked(tid, block));
  i64 end = (tid == nprocs - 1)
                ? ub
                : std::min(ub, addChecked(lb, subChecked(
                                              mulChecked(tid + 1, block), 1)));
  return IterRange{begin, end, 1};
}

}  // namespace spmd::exec
