// The lowered execution engine.
//
// Engine executes a LoweredProgram on a ThreadTeam with the exact
// synchronization protocol of the interpreting SpmdExecutor — same
// reduction accumulation (processor 0 seeds from its incoming private
// value, others from the identity, first finisher assigns the shared
// slot), same master-scalar publication points (barrier serial sections
// and pre-post at waitMaster counters), same region-entry scalar snapshot
// and post-region finalization, and byte-identical SyncCounts — but with
// the per-iteration interpretation overhead lowered away:
//
//   * bind() resolves access templates against the store once per run:
//     row-major strides fold the per-dimension affine forms into a single
//     flat-offset form with one bounds check;
//   * expression tapes evaluate over a preallocated per-thread stack —
//     no recursion, no virtual dispatch, no allocation;
//   * parallel loops iterate closed-form owned ranges (owned_range.h)
//     where the partition allows, instead of testing ownership per
//     iteration.
//
// Per-thread state is cache-line aligned and separately allocated, so one
// thread's frame/scalar/stack writes never share a line with another's.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "core/physical_sync.h"
#include "exec/lowered.h"
#include "exec/native/abi.h"
#include "exec/sync_tuning.h"
#include "exec/owned_range.h"
#include "ir/eval.h"
#include "runtime/sync_primitive.h"
#include "runtime/team.h"

namespace spmd::exec {

namespace native {
class NativeModule;
}

class Engine {
 public:
  /// The lowered program (and the program/decomposition it references)
  /// must outlive the engine; the team's size fixes P.  When `native` is
  /// non-null it must have been built from exactly `lowered` and outlive
  /// the engine: synchronization-free units then dispatch through its
  /// compiled functions, while every sync decision (barriers, counters,
  /// pending-scalar publication, reduction combining) stays here — which
  /// is why native runs produce byte-identical SyncCounts.
  /// When `physical` is non-null (a feasible allocation over the same
  /// plan `lowered` was built from, outliving the engine), region sync
  /// dispatches through a fixed rt::SyncPool indexed by the map's physical
  /// ids instead of per-sync-point primitives.  Occurrence counts are kept
  /// per physical slot and every thread passes a region's sync points in
  /// the same order, so pooled runs produce byte-identical stores and
  /// SyncCounts to unpooled runs by construction.
  /// When `tuning` is non-null (one RegionTuning per lowered item,
  /// outliving the engine), region execution applies the driver's
  /// feedback-directed choices: per-region barrier-algorithm overrides
  /// (a dedicated primitive per overridden region — correct for the same
  /// reason the unpooled engine's single shared barrier is: every thread
  /// passes every barrier of a region, so episodes are totally ordered)
  /// and serial-compute execution (see sync_tuning.h).  Stores and
  /// SyncCounts are byte-identical to untuned runs by construction.
  Engine(const LoweredProgram& lowered, rt::ThreadTeam& team,
         rt::SyncPrimitiveOptions sync = rt::SyncPrimitiveOptions(),
         const native::NativeModule* native = nullptr,
         const core::PhysicalSyncMap* physical = nullptr,
         const SyncTuningMap* tuning = nullptr);

  /// Base fork-join execution (lowered runForkJoin).
  rt::SyncCounts runForkJoin(ir::Store& store);

  /// Merged-region execution; the lowered program must carry a plan.
  rt::SyncCounts runRegions(ir::Store& store);

 private:
  /// One variable term of a bound flat-offset form: stride * frame[var].
  struct BoundTerm {
    std::int32_t var = 0;
    i64 stride = 0;
  };

  /// An access template bound to concrete extents: flat base offset plus
  /// per-variable strides, one bounds check against the flat size.
  struct BoundAccess {
    std::int32_t array = -1;
    i64 base = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  struct BoundArray {
    double* data = nullptr;
    i64 size = 0;
    part::DistKind dist = part::DistKind::Replicated;
    i64 align = 0;
    i64 blockParam = 1;
  };

  /// Per-thread execution state.  Aligned and separately allocated so the
  /// hot members (frame writes per iteration, stack traffic per
  /// expression, occurrence bumps per sync) never false-share across
  /// threads; buffer lengths are rounded up to cache-line multiples so
  /// adjacent heap blocks do not share a tail line either.
  struct alignas(64) ThreadState {
    std::vector<i64> frame;       ///< variable id -> current value
    std::vector<double> scalars;  ///< private scalar table
    std::vector<double> stack;    ///< tape evaluation stack
    std::vector<std::uint64_t> occ;  ///< per sync id occurrence counts
    double* scalarBase = nullptr;    ///< scalars.data() or store-direct
    rt::SyncCounts counts;
  };

  /// Per-region-execution runtime objects: counters by sync id (unpooled
  /// mode), or the region's physical assignment (pooled mode).
  struct RegionRun {
    std::vector<std::unique_ptr<rt::SyncPrimitive>> counters;
    const core::PhysicalItemMap* phys = nullptr;
    /// Tuned-mode state for this item (null: untuned).
    const RegionTuning* tuning = nullptr;
    /// Barrier serving every barrier point of this region when the
    /// tuning overrides the algorithm (null: pool / shared barrier).
    rt::Barrier* barrierOverride = nullptr;
    bool serialCompute() const {
      return tuning != nullptr && tuning->serialCompute;
    }
  };

  void bind(ir::Store& store);

  double evalTape(std::int32_t tape, ThreadState& ts) const;
  double* accessSlot(std::int32_t access, const i64* frame) const;
  int ownerOf(const BoundArray& arr, i64 subscript, int nprocs) const;
  IterRange ownedRange(const OwnerTemplate& ot, i64 lb, i64 ub, int tid,
                       const i64* frame) const;

  /// The compiled function for `s`, or null (no module / not a unit).
  native::NativeFn nativeFor(const LoweredStmt& s) const;
  /// Rebuilds the NativeContext tables against the bound store; checks
  /// the module's structural access layout against bind()'s folding.
  void bindNative();

  void execLocal(const LoweredStmt& s, ThreadState& ts);
  void execParallelLoop(const LoweredStmt& s, int tid, ThreadState& ts);
  void execGuarded(const LoweredStmt& s, int tid, ThreadState& ts);
  /// Serial-compute mode, thread 0 only: the full iteration space of a
  /// parallel loop / every cell of a guarded subtree, in ascending order.
  void execParallelLoopSerial(const LoweredStmt& s, ThreadState& ts);
  void execGuardedSerial(const LoweredStmt& s, ThreadState& ts);
  void execSync(const core::SyncPoint& point, const LoweredItem& item,
                RegionRun& run, int tid, ThreadState& ts);
  void execNode(const LoweredNode& node, const LoweredItem& item,
                RegionRun& run, int tid, ThreadState& ts);
  void execNodeSeq(const std::vector<LoweredNode>& nodes,
                   const LoweredItem& item, RegionRun& run, int tid,
                   ThreadState& ts);
  void execRegion(const LoweredItem& item, RegionRun& run, int tid);
  void walkForkJoin(const LoweredStmt& s, rt::SyncCounts& counts);

  /// Publishes pending master/reduction scalar values into the store.
  /// Serial contexts only (barrier serial section, master after a join).
  void publishPending();

  const LoweredProgram* lp_;
  rt::ThreadTeam* team_;
  rt::SyncPrimitiveOptions sync_;
  const native::NativeModule* native_ = nullptr;
  const core::PhysicalSyncMap* physical_ = nullptr;
  const SyncTuningMap* tuning_ = nullptr;
  std::unique_ptr<rt::SyncPrimitive> barrier_;
  std::unique_ptr<rt::SyncPool> pool_;  ///< pooled mode only
  /// Per-item override barriers (tuned mode; null where not overridden).
  std::vector<std::unique_ptr<rt::SyncPrimitive>> tunedBarriers_;

  // --- bound per-run state (bind) ---
  ir::Store* store_ = nullptr;
  std::vector<BoundArray> arrays_;
  std::vector<BoundTerm> boundTerms_;
  std::vector<BoundAccess> boundAccesses_;
  i64 templateBlock_ = 0;  ///< concrete block size B; 0 when no template

  // --- native-dispatch tables (bindNative; see native/abi.h) ---
  std::vector<double*> nativeArrays_;
  std::vector<i64> nativeAccessParams_;
  std::vector<i64> nativeArraySize_;
  std::vector<i64> nativeArrayAlign_;
  std::vector<i64> nativeArrayBlock_;
  std::vector<std::int32_t> nativeArrayDist_;
  native::NativeContext nativeCtx_;

  std::vector<std::unique_ptr<ThreadState>> states_;

  // Fork-join snapshots taken by the master before each fork; workers
  // copy from these, never from the master's live state.
  std::vector<double> scalarSnapshot_;
  std::vector<i64> frameSnapshot_;

  // Same pending-publication protocol as the interpreter (see the comment
  // block in codegen/spmd_executor.h).
  std::mutex reductionMutex_;
  std::map<int, std::pair<double, ir::ReductionOp>> reductionPending_;
  std::map<int, double> masterPending_;
};

}  // namespace spmd::exec
