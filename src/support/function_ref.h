// A non-owning, non-allocating callable reference.
//
// The barrier serial section runs once per episode on the synchronization
// fast path; wrapping it in std::function would heap-allocate (or at best
// copy into SBO storage) at every arrive() call site.  FunctionRef erases
// the callable to one data pointer plus one function pointer: cheap to
// construct, trivially copyable, and safe as long as the referenced
// callable outlives the call — which a barrier arrival guarantees, since
// the caller blocks inside arrive() for the whole episode.
#pragma once

#include <type_traits>
#include <utility>

namespace spmd {

template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  /// Empty reference; callable() is false and operator() must not be used.
  FunctionRef() = default;

  /// Binds any callable lvalue.  Rvalues are accepted too (the temporary
  /// outlives a full-expression call like `barrier.arrive(0, [...]{})`),
  /// but storing such a reference past the statement is undefined.
  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return call_ != nullptr; }

 private:
  void* obj_ = nullptr;
  R (*call_)(void*, Args...) = nullptr;
};

}  // namespace spmd
