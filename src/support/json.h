// A minimal streaming JSON writer for machine-readable reports
// (spmdopt --report-json, BENCH_*.json).  Emits pretty-printed output a
// strict parser accepts; no reading, no DOM.
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <locale>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "support/diag.h"

namespace spmd {

inline std::string jsonEscape(const std::string& s) {
  std::ostringstream os;
  os.imbue(std::locale::classic());
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  return os.str();
}

/// Structured writer: object()/array() open containers, close() pops the
/// innermost one, field()/value() emit members.  Keys and separators are
/// handled so the output is always syntactically valid provided opens and
/// closes balance (checked).
///
/// Compact mode suppresses all newlines and indentation, producing the
/// document on a single line — required by newline-delimited consumers
/// (the service protocol frames one JSON document per line).
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, bool compact = false)
      : os_(&os), compact_(compact) {}

  JsonWriter& object() { return open('{', '}'); }
  JsonWriter& array() { return open('[', ']'); }

  JsonWriter& close() {
    SPMD_ASSERT(!stack_.empty(), "JsonWriter::close with nothing open");
    Frame frame = stack_.back();
    stack_.pop_back();
    if (frame.members > 0 && !compact_) {
      *os_ << "\n";
      indent();
    }
    *os_ << frame.closer;
    return *this;
  }

  /// Named member inside an object; follow with object()/array()/value().
  JsonWriter& field(const std::string& key) {
    beginMember();
    *os_ << '"' << jsonEscape(key) << "\": ";
    pendingKey_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) { return scalar('"' + jsonEscape(v) + '"'); }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(bool v) { return scalar(v ? "true" : "false"); }
  JsonWriter& value(double v) {
    if (!std::isfinite(v)) return scalar("null");
    std::ostringstream os;
    // The stream must format with the "C" locale regardless of the
    // process's global locale: a comma-decimal locale (e.g. de_DE) would
    // print 0,5 — invalid JSON — and grouping locales would insert
    // thousands separators.
    os.imbue(std::locale::classic());
    os.precision(12);
    os << v;
    return scalar(os.str());
  }
  JsonWriter& value(std::int64_t v) { return scalar(std::to_string(v)); }
  JsonWriter& value(std::uint64_t v) { return scalar(std::to_string(v)); }
  JsonWriter& value(int v) { return scalar(std::to_string(v)); }

  template <class T>
  JsonWriter& field(const std::string& key, T v) {
    return field(key).value(v);
  }

  bool done() const { return stack_.empty(); }

 private:
  struct Frame {
    char closer;
    int members;
  };

  JsonWriter& open(char opener, char closer) {
    beginMember();
    *os_ << opener;
    stack_.push_back(Frame{closer, 0});
    return *this;
  }

  template <class S>
  JsonWriter& scalar(const S& text) {
    beginMember();
    *os_ << text;
    return *this;
  }

  /// Emits the separator/indentation due before the next member, unless a
  /// field() already did.
  void beginMember() {
    if (pendingKey_) {
      pendingKey_ = false;
      return;
    }
    if (stack_.empty()) return;
    if (stack_.back().members++ > 0) *os_ << ",";
    if (compact_) return;
    *os_ << "\n";
    indent();
  }

  void indent() {
    for (std::size_t i = 0; i < stack_.size(); ++i) *os_ << "  ";
  }

  std::ostream* os_;
  std::vector<Frame> stack_;
  bool compact_ = false;
  bool pendingKey_ = false;
};

}  // namespace spmd
