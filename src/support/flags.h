// Shared strict command-line value parsers.
//
// Every CLI surface (spmdopt, spmdtrace, benches) grew its own ad-hoc
// flag-value parsing: stoi wrapped in try/catch here, a chain of string
// compares there, each with slightly different strictness.  These helpers
// centralize the two recurring shapes:
//
//   * parseEnumFlag: a table-driven enumerated value ("--spin=backoff",
//     "--engine=native").  Case-insensitive, whole-string, no prefixes —
//     a typo is a parse failure, never a silent default.  The table also
//     renders the "expected a, b, or c" diagnostic so the message can
//     never drift from the accepted set.
//   * parseIntFlag / parseInt64Flag: a strict integer — the entire text
//     must be one in-range number ("8x" and "" fail).
//
// Parsers return nullopt instead of diagnosing: the caller owns the exit
// code (spmdopt exits 2 on any bad flag value) and the stream.
#pragma once

#include <cctype>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace spmd::support {

/// One legal value of an enumerated flag.
template <typename E>
struct EnumFlagValue {
  const char* name;
  E value;
};

/// Strict table lookup of an enumerated flag value.  Matching is
/// case-insensitive ("--engine=Native" works) but whole-string: prefixes
/// and trailing garbage fail.
template <typename E, std::size_t N>
std::optional<E> parseEnumFlag(std::string_view text,
                               const EnumFlagValue<E> (&table)[N]) {
  std::string lower(text);
  for (char& c : lower)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  for (const EnumFlagValue<E>& entry : table)
    if (lower == entry.name) return entry.value;
  return std::nullopt;
}

/// Renders the accepted set as "a, b, or c" for parse-failure messages,
/// straight from the same table parseEnumFlag matched against.
template <typename E, std::size_t N>
std::string enumFlagChoices(const EnumFlagValue<E> (&table)[N]) {
  std::string out;
  for (std::size_t i = 0; i < N; ++i) {
    if (i > 0) out += (i + 1 == N) ? (N > 2 ? ", or " : " or ") : ", ";
    out += table[i].name;
  }
  return out;
}

/// Strict 64-bit integer parse: the whole string must be one number.
inline std::optional<std::int64_t> parseInt64Flag(const std::string& text) {
  try {
    std::size_t pos = 0;
    std::int64_t value = std::stoll(text, &pos);
    if (text.empty() || pos != text.size()) return std::nullopt;
    return value;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

/// Strict int parse (parseInt64Flag narrowed with a range check).
inline std::optional<int> parseIntFlag(const std::string& text) {
  std::optional<std::int64_t> value = parseInt64Flag(text);
  if (!value.has_value() || *value < INT32_MIN || *value > INT32_MAX)
    return std::nullopt;
  return static_cast<int>(*value);
}

}  // namespace spmd::support
