#include "support/json_reader.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace spmd {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  auto it = members_.find(key);
  return it == members_.end() ? nullptr : it->second.get();
}

double JsonValue::getDouble(const std::string& key, double fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::Number ? v->asDouble() : fallback;
}

std::int64_t JsonValue::getInt(const std::string& key,
                               std::int64_t fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::Number ? v->asInt() : fallback;
}

std::string JsonValue::getString(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::String ? v->asString() : fallback;
}

bool JsonValue::getBool(const std::string& key, bool fallback) const {
  const JsonValue* v = get(key);
  return v != nullptr && v->kind() == Kind::Bool ? v->asBool() : fallback;
}

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValuePtr parse(std::string* error) {
    JsonValuePtr v = parseValue();
    if (v != nullptr) {
      skipSpace();
      if (pos_ != text_.size()) {
        fail("trailing content after the document");
        v = nullptr;
      }
    }
    if (v == nullptr && error != nullptr) *error = error_;
    return v;
  }

 private:
  /// Guards one recursion level of parseObject/parseArray.  Entered
  /// before the recursive descent, so the depth check fires while the
  /// parser still has stack to report the error with.
  struct DepthGuard {
    explicit DepthGuard(JsonParser& p) : parser(p) { ++parser.depth_; }
    ~DepthGuard() { --parser.depth_; }
    bool exceeded() const { return parser.depth_ > kJsonMaxDepth; }
    JsonParser& parser;
  };

  JsonValuePtr parseValue() {
    skipSpace();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return parseObject();
      case '[':
        return parseArray();
      case '"':
        return parseString();
      case 't':
      case 'f':
        return parseKeyword(c == 't' ? "true" : "false",
                            JsonValue::Kind::Bool, c == 't');
      case 'n':
        return parseKeyword("null", JsonValue::Kind::Null, false);
      default:
        return parseNumber();
    }
  }

  JsonValuePtr parseObject() {
    DepthGuard depth(*this);
    if (depth.exceeded())
      return fail("nesting depth limit (" + std::to_string(kJsonMaxDepth) +
                  ") exceeded");
    ++pos_;  // '{'
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::Object;
    skipSpace();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipSpace();
      if (peek() != '"') return fail("expected object key");
      JsonValuePtr key = parseString();
      if (key == nullptr) return nullptr;
      skipSpace();
      if (peek() != ':') return fail("expected ':' after object key");
      ++pos_;
      JsonValuePtr member = parseValue();
      if (member == nullptr) return nullptr;
      v->members_[key->asString()] = member;
      skipSpace();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  JsonValuePtr parseArray() {
    DepthGuard depth(*this);
    if (depth.exceeded())
      return fail("nesting depth limit (" + std::to_string(kJsonMaxDepth) +
                  ") exceeded");
    ++pos_;  // '['
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::Array;
    skipSpace();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      JsonValuePtr item = parseValue();
      if (item == nullptr) return nullptr;
      v->items_.push_back(std::move(item));
      skipSpace();
      char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  JsonValuePtr parseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        auto v = std::make_shared<JsonValue>();
        v->kind_ = JsonValue::Kind::String;
        v->string_ = std::move(out);
        return v;
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"':
          out.push_back('"');
          break;
        case '\\':
          out.push_back('\\');
          break;
        case '/':
          out.push_back('/');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return fail("bad \\u escape digit");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by JsonWriter; a lone surrogate encodes as-is).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape character");
      }
    }
    return fail("unterminated string");
  }

  JsonValuePtr parseKeyword(const char* word, JsonValue::Kind kind,
                            bool boolValue) {
    std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    auto v = std::make_shared<JsonValue>();
    v->kind_ = kind;
    v->boolean_ = boolValue;
    return v;
  }

  JsonValuePtr parseNumber() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        // The leading minus was consumed before the loop, so any sign
        // here belongs to an exponent: the number is not integral.
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a value");
    std::string token = text_.substr(start, pos_ - start);
    errno = 0;
    char* end = nullptr;
    double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE)
      return fail("malformed number");
    auto v = std::make_shared<JsonValue>();
    v->kind_ = JsonValue::Kind::Number;
    v->number_ = d;
    if (integral) {
      errno = 0;
      long long i = std::strtoll(token.c_str(), &end, 10);
      v->integer_ = errno == ERANGE ? static_cast<std::int64_t>(d)
                                    : static_cast<std::int64_t>(i);
    } else {
      v->integer_ = static_cast<std::int64_t>(d);
    }
    return v;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void skipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  JsonValuePtr fail(const std::string& message) {
    if (error_.empty())
      error_ = message + " (at byte " + std::to_string(pos_) + ")";
    return nullptr;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;  ///< open containers on the recursion stack
  std::string error_;
};

JsonValuePtr parseJson(const std::string& text, std::string* error) {
  return JsonParser(text).parse(error);
}

JsonValuePtr parseJsonFile(const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return nullptr;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return parseJson(buf.str(), error);
}

}  // namespace spmd
