// Diagnostics for the spmdsync library.
//
// Two layers:
//   * Checked assertions (SPMD_CHECK / SPMD_ASSERT) for conditions that
//     depend on user-supplied programs (recoverable, throws spmd::Error)
//     and internal invariants.
//   * A structured DiagnosticsEngine: severities, source locations, and a
//     sink interface, threaded through the parser, validator, and driver
//     so front-end problems are reported as data instead of ad-hoc
//     std::cerr writes or bare throws.  Sinks decide presentation (a
//     stream for CLIs, a collecting vector for tests and --report-json).
#pragma once

#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace spmd {

/// Base error type thrown by all spmdsync components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raiseCheckFailure(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

// --- structured diagnostics ------------------------------------------------

/// A position in user-written source.  Lines are 1-based; 0 means "no
/// location" (e.g. whole-program diagnostics from the validator).
struct SourceLoc {
  int line = 0;

  bool valid() const { return line > 0; }
  static SourceLoc none() { return SourceLoc{}; }
  static SourceLoc atLine(int line) { return SourceLoc{line}; }
};

enum class Severity { Note, Warning, Error };

inline const char* severityName(Severity s) {
  switch (s) {
    case Severity::Note:
      return "note";
    case Severity::Warning:
      return "warning";
    case Severity::Error:
      return "error";
  }
  return "?";
}

/// One reported problem.  `category` is a stable machine-readable tag
/// (e.g. a ValidationIssue kind name); empty for uncategorized messages.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string category;
  std::string message;
};

/// Renders a diagnostic the way the CLI tools print it:
///   "error: line 3: expected PROGRAM"
///   "warning: [carried-array-dependence] DOALL i carries ..."
inline std::string formatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << severityName(d.severity) << ": ";
  if (d.loc.valid()) os << "line " << d.loc.line << ": ";
  if (!d.category.empty()) os << "[" << d.category << "] ";
  os << d.message;
  return os.str();
}

/// Consumer of emitted diagnostics.  Implementations must tolerate being
/// called from whichever thread runs the pass (the driver compiles
/// independent units on worker threads, one engine per unit).
class DiagnosticSink {
 public:
  virtual ~DiagnosticSink() = default;
  virtual void handle(const Diagnostic& diag) = 0;
};

/// Prints each diagnostic as one line to a stream.
class StreamDiagnosticSink final : public DiagnosticSink {
 public:
  explicit StreamDiagnosticSink(std::ostream& os) : os_(&os) {}
  void handle(const Diagnostic& diag) override {
    *os_ << formatDiagnostic(diag) << "\n";
  }

 private:
  std::ostream* os_;
};

/// Buffers diagnostics for later inspection (tests, JSON reports).
class CollectingDiagnosticSink final : public DiagnosticSink {
 public:
  void handle(const Diagnostic& diag) override { all_.push_back(diag); }
  const std::vector<Diagnostic>& all() const { return all_; }
  void clear() { all_.clear(); }

 private:
  std::vector<Diagnostic> all_;
};

/// Emission hub: counts per severity for error gating and forwards every
/// diagnostic to the installed sink (none by default — counting still
/// works, so library code can be used without any presentation layer).
class DiagnosticsEngine {
 public:
  DiagnosticsEngine() = default;
  explicit DiagnosticsEngine(DiagnosticSink* sink) : sink_(sink) {}

  /// The sink is borrowed, not owned; pass nullptr to detach.
  void setSink(DiagnosticSink* sink) { sink_ = sink; }
  DiagnosticSink* sink() const { return sink_; }

  void report(Diagnostic diag) {
    switch (diag.severity) {
      case Severity::Note:
        ++notes_;
        break;
      case Severity::Warning:
        ++warnings_;
        break;
      case Severity::Error:
        ++errors_;
        break;
    }
    if (sink_ != nullptr) sink_->handle(diag);
  }

  void note(SourceLoc loc, std::string message, std::string category = {}) {
    report({Severity::Note, loc, std::move(category), std::move(message)});
  }
  void warning(SourceLoc loc, std::string message, std::string category = {}) {
    report({Severity::Warning, loc, std::move(category), std::move(message)});
  }
  void error(SourceLoc loc, std::string message, std::string category = {}) {
    report({Severity::Error, loc, std::move(category), std::move(message)});
  }

  std::size_t noteCount() const { return notes_; }
  std::size_t warningCount() const { return warnings_; }
  std::size_t errorCount() const { return errors_; }
  bool hasErrors() const { return errors_ > 0; }

  /// Forgets counts (the sink keeps whatever it already consumed).
  void resetCounts() { notes_ = warnings_ = errors_ = 0; }

 private:
  DiagnosticSink* sink_ = nullptr;
  std::size_t notes_ = 0;
  std::size_t warnings_ = 0;
  std::size_t errors_ = 0;
};

}  // namespace spmd

/// Recoverable precondition check; throws spmd::Error on failure.
#define SPMD_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::spmd::detail::raiseCheckFailure(#cond, __FILE__, __LINE__,          \
                                        std::string(msg));                  \
  } while (0)

/// Internal invariant; failure indicates a bug in spmdsync itself.
#define SPMD_ASSERT(cond, msg) SPMD_CHECK(cond, msg)

/// Marks unreachable control flow.
#define SPMD_UNREACHABLE(msg)                                               \
  ::spmd::detail::raiseCheckFailure("unreachable", __FILE__, __LINE__,      \
                                    std::string(msg))
