// Diagnostics: checked assertions and error reporting for the spmdsync
// library.  Analysis code uses SPMD_CHECK for conditions that depend on
// user-supplied programs (recoverable, throws spmd::Error); SPMD_ASSERT
// guards internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spmd {

/// Base error type thrown by all spmdsync components.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void raiseCheckFailure(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail

}  // namespace spmd

/// Recoverable precondition check; throws spmd::Error on failure.
#define SPMD_CHECK(cond, msg)                                               \
  do {                                                                      \
    if (!(cond))                                                            \
      ::spmd::detail::raiseCheckFailure(#cond, __FILE__, __LINE__,          \
                                        std::string(msg));                  \
  } while (0)

/// Internal invariant; failure indicates a bug in spmdsync itself.
#define SPMD_ASSERT(cond, msg) SPMD_CHECK(cond, msg)

/// Marks unreachable control flow.
#define SPMD_UNREACHABLE(msg)                                               \
  ::spmd::detail::raiseCheckFailure("unreachable", __FILE__, __LINE__,      \
                                    std::string(msg))
