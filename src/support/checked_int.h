// Overflow-checked 64-bit integer arithmetic.
//
// Fourier–Motzkin elimination multiplies constraint coefficients together;
// on pathological systems intermediate values can overflow int64.  All
// arithmetic in src/poly goes through these helpers, which compute in
// 128 bits and throw spmd::Error on overflow rather than silently wrapping
// (a wrapped coefficient would make the compiler unsound: it could report
// "no communication" and drop a barrier that is actually required).
#pragma once

#include <cstdint>
#include <numeric>

#include "support/diag.h"

namespace spmd {

using i64 = std::int64_t;
using i128 = __int128;

inline i64 checkedNarrow(i128 v) {
  SPMD_CHECK(v >= static_cast<i128>(INT64_MIN) &&
                 v <= static_cast<i128>(INT64_MAX),
             "integer overflow in linear-inequality arithmetic");
  return static_cast<i64>(v);
}

inline i64 addChecked(i64 a, i64 b) {
  return checkedNarrow(static_cast<i128>(a) + static_cast<i128>(b));
}

inline i64 subChecked(i64 a, i64 b) {
  return checkedNarrow(static_cast<i128>(a) - static_cast<i128>(b));
}

inline i64 mulChecked(i64 a, i64 b) {
  return checkedNarrow(static_cast<i128>(a) * static_cast<i128>(b));
}

inline i64 negChecked(i64 a) {
  SPMD_CHECK(a != INT64_MIN, "integer overflow negating INT64_MIN");
  return -a;
}

/// Greatest common divisor of |a| and |b|; gcd(0,0) == 0.
inline i64 gcd64(i64 a, i64 b) {
  if (a < 0) a = negChecked(a);
  if (b < 0) b = negChecked(b);
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

/// floor(a / b) for b > 0.
inline i64 floorDiv(i64 a, i64 b) {
  SPMD_ASSERT(b > 0, "floorDiv requires positive divisor");
  i64 q = a / b;
  if (a % b != 0 && a < 0) --q;
  return q;
}

/// ceil(a / b) for b > 0.
inline i64 ceilDiv(i64 a, i64 b) {
  SPMD_ASSERT(b > 0, "ceilDiv requires positive divisor");
  i64 q = a / b;
  if (a % b != 0 && a > 0) ++q;
  return q;
}

}  // namespace spmd
