// Minimal aligned text-table printer used by the benchmark harnesses to
// emit paper-style result tables.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace spmd {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void addRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Convenience: stream-format arbitrary cell values.
  template <typename... Ts>
  void addRowValues(const Ts&... values) {
    std::vector<std::string> cells;
    (cells.push_back(toCell(values)), ...);
    addRow(std::move(cells));
  }

  void print(std::ostream& os) const {
    std::vector<std::size_t> width(header_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size() && c < width.size(); ++c)
        width[c] = std::max(width[c], row[c].size());
    };
    widen(header_);
    for (const auto& r : rows_) widen(r);

    auto line = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < width.size(); ++c) {
        const std::string& cell = c < row.size() ? row[c] : std::string();
        os << (c == 0 ? "" : "  ") << std::left << std::setw(int(width[c]))
           << cell;
      }
      os << "\n";
    };
    line(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
      total += width[c] + (c == 0 ? 0 : 2);
    os << std::string(total, '-') << "\n";
    for (const auto& r : rows_) line(r);
  }

  template <typename T>
  static std::string toCell(const T& v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (bench output helper).
inline std::string fixed(double v, int precision = 2) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

/// Formats a ratio as a percentage string, e.g. 0.29 -> "29.0%".
inline std::string percent(double ratio, int precision = 1) {
  return fixed(ratio * 100.0, precision) + "%";
}

}  // namespace spmd
