// Exact rational numbers over checked 64-bit integers.
//
// Used by the inequality engine when computing variable bounds during
// integer-point sampling and when comparing Fourier–Motzkin shadow bounds.
#pragma once

#include <compare>
#include <ostream>

#include "support/checked_int.h"

namespace spmd {

class Rational {
 public:
  Rational() = default;
  Rational(i64 value) : num_(value), den_(1) {}  // NOLINT: implicit by design
  Rational(i64 num, i64 den) : num_(num), den_(den) {
    SPMD_CHECK(den != 0, "rational with zero denominator");
    normalize();
  }

  i64 num() const { return num_; }
  i64 den() const { return den_; }

  bool isInteger() const { return den_ == 1; }

  /// Largest integer <= *this.
  i64 floor() const { return floorDiv(num_, den_); }
  /// Smallest integer >= *this.
  i64 ceil() const { return ceilDiv(num_, den_); }

  Rational operator-() const { return Rational(negChecked(num_), den_); }

  friend Rational operator+(const Rational& a, const Rational& b) {
    return Rational(addChecked(mulChecked(a.num_, b.den_),
                               mulChecked(b.num_, a.den_)),
                    mulChecked(a.den_, b.den_));
  }
  friend Rational operator-(const Rational& a, const Rational& b) {
    return a + (-b);
  }
  friend Rational operator*(const Rational& a, const Rational& b) {
    return Rational(mulChecked(a.num_, b.num_), mulChecked(a.den_, b.den_));
  }
  friend Rational operator/(const Rational& a, const Rational& b) {
    SPMD_CHECK(b.num_ != 0, "rational division by zero");
    return Rational(mulChecked(a.num_, b.den_), mulChecked(a.den_, b.num_));
  }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    // Cross-multiply in 128 bits; denominators are kept positive.
    i128 lhs = static_cast<i128>(a.num_) * b.den_;
    i128 rhs = static_cast<i128>(b.num_) * a.den_;
    if (lhs < rhs) return std::strong_ordering::less;
    if (lhs > rhs) return std::strong_ordering::greater;
    return std::strong_ordering::equal;
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& r) {
    os << r.num_;
    if (r.den_ != 1) os << "/" << r.den_;
    return os;
  }

 private:
  void normalize() {
    if (den_ < 0) {
      num_ = negChecked(num_);
      den_ = negChecked(den_);
    }
    i64 g = gcd64(num_, den_);
    if (g > 1) {
      num_ /= g;
      den_ /= g;
    }
    if (num_ == 0) den_ = 1;
  }

  i64 num_ = 0;
  i64 den_ = 1;
};

}  // namespace spmd
