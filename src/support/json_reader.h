// A minimal JSON reader for the tools that consume this project's own
// machine-readable outputs (spmdtrace reads --trace files, bench_gate
// reads BENCH_*.json) and for the service request protocol (spmdopt
// --serve).  Strict recursive-descent parser into a small DOM; no
// streaming, no extensions beyond what JsonWriter emits (standard JSON
// with finite numbers).
//
// Container nesting is bounded by kJsonMaxDepth: the parser recurses once
// per open array/object, so an adversarial input of a few hundred
// kilobytes of "[[[[..." would otherwise overflow the stack — fatal for a
// long-lived server parsing untrusted request bodies.  Exceeding the bound
// is a structured parse error ("nesting depth limit ..."), never a crash.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace spmd {

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

/// Maximum container (array/object) nesting the parser accepts.  Every
/// document this project emits stays under a dozen levels; 64 leaves
/// generous headroom while keeping worst-case parser stack use a few
/// kilobytes.
inline constexpr int kJsonMaxDepth = 64;

/// One parsed JSON value.  Numbers keep both views: `asDouble` for
/// measurements, `asInt` (exact when the text had no fraction/exponent)
/// for counters and ids.
class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }
  bool isObject() const { return kind_ == Kind::Object; }
  bool isArray() const { return kind_ == Kind::Array; }

  bool asBool() const { return boolean_; }
  double asDouble() const { return number_; }
  std::int64_t asInt() const { return integer_; }
  const std::string& asString() const { return string_; }
  const std::vector<JsonValuePtr>& items() const { return items_; }
  /// Members in document order (duplicate keys keep the last value).
  const std::map<std::string, JsonValuePtr>& members() const {
    return members_;
  }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  // Typed member conveniences with defaults.
  double getDouble(const std::string& key, double fallback = 0.0) const;
  std::int64_t getInt(const std::string& key, std::int64_t fallback = 0) const;
  std::string getString(const std::string& key,
                        const std::string& fallback = "") const;
  bool getBool(const std::string& key, bool fallback = false) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool boolean_ = false;
  double number_ = 0.0;
  std::int64_t integer_ = 0;
  std::string string_;
  std::vector<JsonValuePtr> items_;
  std::map<std::string, JsonValuePtr> members_;
};

/// Parses `text` as one JSON document.  On failure returns null and, when
/// `error` is non-null, stores a message with the byte offset.
JsonValuePtr parseJson(const std::string& text, std::string* error = nullptr);

/// Reads and parses a JSON file; null (with message) on open/parse failure.
JsonValuePtr parseJsonFile(const std::string& path,
                           std::string* error = nullptr);

}  // namespace spmd
