// Structural 64-bit hashing for compile-time memoization keys.
//
// The analysis pipeline keys its caches (communication pair results,
// Fourier–Motzkin scan results) by the structural identity of the query:
// interned array/loop/statement identities, subscript coefficients, and
// relation tags, folded into a single 64-bit value.  Hasher is a streaming
// FNV-1a accumulator whose digest is passed through a murmur-style
// finalizer so that low-entropy inputs (small integers, aligned pointers)
// still spread over the whole 64-bit range.
//
// Collisions: a cache holding n entries sees a collision with probability
// about n^2 / 2^65.  Whole-suite analysis performs a few thousand distinct
// queries, so the probability is below 1e-11 per run — far below the
// hardware error rate.  Callers that cannot tolerate even that should keep
// the full key alongside the hash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace spmd::support {

/// Finalizing mix (MurmurHash3 fmix64): full avalanche over 64 bits.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

/// Order-sensitive combination of two 64-bit values.
constexpr std::uint64_t hashCombine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ull + (seed << 6) +
                       (seed >> 2)));
}

/// Streaming structural hasher (FNV-1a core, mixed digest).
class Hasher {
 public:
  static constexpr std::uint64_t kOffset = 1469598103934665603ull;
  static constexpr std::uint64_t kPrime = 1099511628211ull;

  Hasher() = default;
  explicit Hasher(std::uint64_t seed) : state_(kOffset ^ mix64(seed)) {}

  Hasher& u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      state_ = (state_ ^ (v & 0xff)) * kPrime;
      v >>= 8;
    }
    return *this;
  }
  Hasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  Hasher& u32(std::uint32_t v) { return u64(v); }
  Hasher& i32(std::int32_t v) {
    return u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(v)));
  }
  Hasher& boolean(bool v) { return u64(v ? 1 : 0); }

  /// Pointer identity (stable within one process — cache keys built from
  /// pointers must never cross process boundaries).
  Hasher& pointer(const void* p) {
    return u64(static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(p)));
  }

  Hasher& bytes(std::string_view s) {
    for (unsigned char c : s) state_ = (state_ ^ c) * kPrime;
    // Fold in the length so adjacent fields keep their boundary:
    // "ab"+"c" must not collide with "a"+"bc".
    return u64(s.size());
  }

  std::uint64_t digest() const { return mix64(state_); }

 private:
  std::uint64_t state_ = kOffset;
};

}  // namespace spmd::support
