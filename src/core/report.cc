#include "core/report.h"

#include <sstream>

namespace spmd::core {

std::string boundaryReason(const BoundaryRecord& r) {
  const comm::PairResult& a = r.arrays;
  std::ostringstream os;
  switch (r.decision.kind) {
    case SyncPoint::Kind::None:
      if (!a.comm && r.scalars == ScalarComm::None)
        os << "no cross-processor data movement: producers and consumers "
              "of all shared data are the same processor";
      else
        os << "eliminated";
      break;
    case SyncPoint::Kind::Counter: {
      os << "communication confined to ";
      bool first = true;
      if (a.right1) {
        os << "right-neighbor flow (q = p+1)";
        first = false;
      }
      if (a.left1) {
        os << (first ? "" : " and ") << "left-neighbor flow (q = p-1)";
        first = false;
      }
      if (r.scalars == ScalarComm::Master)
        os << (first ? "" : " plus ") << "a master-produced scalar";
      os << "; replaced barrier with counter synchronization";
      break;
    }
    case SyncPoint::Kind::Barrier: {
      if (!a.exact)
        os << "placement not analyzable (no linear ownership or partition "
              "reference): conservative barrier";
      else if (a.farRight || a.farLeft)
        os << "communication crosses non-adjacent processors "
              "(general/all-to-all): barrier required";
      else if (r.scalars == ScalarComm::General)
        os << "reduction or mixed scalar flow needs all contributions: "
              "barrier required";
      else
        os << "barrier required";
      break;
    }
  }
  return os.str();
}

std::string renderReport(const std::vector<BoundaryRecord>& records) {
  std::ostringstream os;
  int region = -1;
  for (const BoundaryRecord& r : records) {
    if (r.region != region) {
      region = r.region;
      os << "region " << region << ":\n";
    }
    os << "  [" << r.decision.toString() << "] " << r.where << "\n"
       << "      " << boundaryReason(r) << "\n";
  }
  if (records.empty()) os << "(no synchronization boundaries)\n";
  return os.str();
}

}  // namespace spmd::core
