// SPMD regions: the hybrid execution model's unit of parallel execution.
//
// "Sequential parts of the program are executed by a single master thread,
// as in traditional shared-memory compilers.  Parallel loops, however, are
// combined to form larger parallel regions that can be treated as small
// SPMD programs." (paper §2, after Cytron et al. [11])
//
// Larger regions are built by also admitting (paper §2.2):
//   * replicated computations — scalar assignments every processor can
//     execute privately (privatizable scalars);
//   * guarded computations — statements executed only by the processor
//     that owns the written element (arrays) or by processor 0 (scalars).
#pragma once

#include <optional>
#include <vector>

#include "core/sync_plan.h"

namespace spmd::core {

enum class NodeKind {
  ParallelLoop,  ///< a DOALL: iterations partitioned across processors
  SeqLoop,       ///< a sequential loop whose body is itself a region
  Replicated,    ///< scalar assignment executed privately by every processor
  Guarded,       ///< statement subtree executed under ownership guards
};

const char* nodeKindName(NodeKind kind);

struct RegionNode {
  NodeKind kind;
  const ir::Stmt* stmt = nullptr;
  std::vector<RegionNode> body;  ///< SeqLoop only

  /// Synchronization placed after this node, within the parent sequence.
  /// The boundary after the *last* top-level node of a region is the
  /// region join (always a barrier, provided by the runtime).
  SyncPoint after;

  /// SeqLoop only: synchronization at the end of the loop body, covering
  /// the back edge between consecutive iterations.  Eliminating or
  /// pipelining this is where the orders-of-magnitude wins come from.
  SyncPoint backEdge;

  /// SeqLoop only, set during lowering: the final iteration's back-edge
  /// barrier is subsumed by an immediately following barrier (or the
  /// region join) and is skipped — merging a region must never execute
  /// more barriers than fork-join did.
  bool elideLastBackEdgeBarrier = false;
};

struct SpmdRegion {
  int id = 0;
  std::vector<RegionNode> nodes;

  std::size_t nodeCount() const;
  /// All sync boundaries in the region (after-boundaries between nodes and
  /// seq-loop back edges; the final join is excluded).
  std::size_t boundaryCount() const;
};

/// A program restructured into master-sequential statements and SPMD
/// regions, in execution order.
struct RegionProgram {
  struct Item {
    const ir::Stmt* sequential = nullptr;  ///< when not a region
    std::optional<SpmdRegion> region;
    bool isRegion() const { return region.has_value(); }
  };
  std::vector<Item> items;

  std::size_t regionCount() const;
};

/// Forms maximal SPMD regions from the program's top level.  A top-level
/// statement joins a region when it is a parallel loop, a replicable or
/// guardable assignment, or a sequential loop whose body (recursively)
/// qualifies and contains at least one parallel loop.  Runs of qualifying
/// statements containing at least one parallel loop become regions; all
/// sync points default to barriers (the unoptimized plan).
RegionProgram buildRegions(const ir::Program& prog);

/// Classifies a single statement as a region node (recursively for loops).
/// Returns std::nullopt when the statement cannot be placed in a region.
std::optional<RegionNode> classifyStmt(const ir::Stmt* stmt);

/// True when the statement subtree contains a parallel loop.
bool containsParallelLoop(const ir::Stmt* stmt);

}  // namespace spmd::core
