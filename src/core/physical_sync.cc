#include "core/physical_sync.h"

#include <sstream>

namespace spmd::core {

std::string PhysicalSyncMap::toString() const {
  std::ostringstream os;
  os << "physical-sync: bounds barriers="
     << (bounds.barriers > 0 ? std::to_string(bounds.barriers)
                             : std::string("unbounded"))
     << " counters="
     << (bounds.counters > 0 ? std::to_string(bounds.counters)
                             : std::string("unbounded"))
     << "\n";
  os << "  feasible: " << (feasible ? "yes" : "no") << "\n";
  if (!feasible) os << "  reason: " << infeasibleReason << "\n";
  os << "  used: " << barriersUsed << " barrier register(s), "
     << countersUsed << " counter slot(s); retries: " << retries << "\n";
  for (std::size_t i = 0; i < items.size(); ++i) {
    const PhysicalItemMap& item = items[i];
    if (!item.isRegion) continue;
    os << "  item " << i << ": barriers[";
    for (std::size_t b = 0; b < item.barrierPhys.size(); ++b) {
      if (b > 0) os << " ";
      os << b << "->" << item.barrierPhys[b];
    }
    os << "] counters[";
    for (std::size_t c = 0; c < item.counterPhys.size(); ++c) {
      if (c > 0) os << " ";
      os << c << "->" << item.counterPhys[c];
    }
    os << "] used=" << item.barriersUsed << "b/" << item.countersUsed
       << "c attempts=" << item.attempts << " d=" << item.reuseDistance
       << "\n";
  }
  return os.str();
}

}  // namespace spmd::core
