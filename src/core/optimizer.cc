#include "core/optimizer.h"

#include "obs/stats.h"
#include "support/diag.h"

// Per-elimination-rule registry counters (obs/stats.h): how many
// boundaries each rule fired on, pinned by tests/obs/stats_test.cc so a
// regression in the analysis shows up as a count change, not just a
// slower plan.
SPMD_STATISTIC(statBoundaries, "optimizer", "boundaries-considered",
               "intra-region sync boundaries examined");
SPMD_STATISTIC(statInteriorEliminated, "optimizer", "interior-eliminated",
               "boundaries proven communication-free (barrier removed)");
SPMD_STATISTIC(statInteriorCounter, "optimizer", "interior-counter",
               "barriers downgraded to nearest-neighbor counters");
SPMD_STATISTIC(statInteriorBarrier, "optimizer", "interior-barrier",
               "boundaries kept as full barriers");
SPMD_STATISTIC(statBackEdges, "optimizer", "backedge-considered",
               "sequential-loop back edges examined");
SPMD_STATISTIC(statBackEdgeEliminated, "optimizer", "backedge-eliminated",
               "back edges proven free of cross-iteration communication");
SPMD_STATISTIC(statBackEdgePipelined, "optimizer", "backedge-pipelined",
               "back-edge barriers pipelined with counters");
SPMD_STATISTIC(statBackEdgeBarrier, "optimizer", "backedge-barrier",
               "back edges kept as per-iteration barriers");

namespace spmd::core {

using analysis::Access;
using analysis::AccessSet;
using analysis::LevelRel;
using analysis::ScalarAccess;
using analysis::collectAccesses;
using comm::PairResult;

namespace {

comm::CommAnalyzer::Options analyzerOptions(const OptimizerOptions& o) {
  comm::CommAnalyzer::Options a;
  a.mode = o.analysisMode;
  a.fm = o.fm;
  a.memoCache = o.memoCache;
  a.dedupAccesses = o.dedupAccesses;
  a.sharedPrefixProjection = o.sharedPrefixProjection;
  a.scanCache = o.scanCache;
  a.threads = o.analysisThreads;
  return a;
}

bool stmtRhsReadsArrays(const ir::Stmt* stmt) {
  std::vector<ir::ArrayRead> reads;
  if (stmt->kind() == ir::Stmt::Kind::ScalarAssign)
    ir::collectArrayReads(stmt->scalarAssign().rhs, reads);
  else if (stmt->kind() == ir::Stmt::Kind::ArrayAssign)
    ir::collectArrayReads(stmt->arrayAssign().rhs, reads);
  return !reads.empty();
}

}  // namespace

ScalarDefKind classifyScalarDef(const ScalarAccess& w) {
  if (w.reduction != ir::ReductionOp::None) return ScalarDefKind::Reduction;
  // Inside a parallel loop a scalar assignment is a privatizable
  // per-iteration temporary; outside one, it is replicable when its value
  // does not depend on array data, else guarded to processor 0.
  if (analysis::enclosingParallelLoop(w.loops) != nullptr)
    return ScalarDefKind::Private;
  if (!stmtRhsReadsArrays(w.stmt)) return ScalarDefKind::Private;
  return ScalarDefKind::Master;
}

ScalarComm scalarCommBetween(const AccessSet& before, const AccessSet& after) {
  ScalarComm worst = ScalarComm::None;
  for (const ScalarAccess& w : before.scalars) {
    if (!w.isWrite) continue;
    ScalarDefKind kind = classifyScalarDef(w);
    if (kind == ScalarDefKind::Private) continue;
    // Does the later group read this scalar?  (Writes-after-writes stay on
    // the producing processor or under the reduction mutex; reads of stale
    // private copies logically precede the def — privatization makes anti
    // dependences benign.)
    bool readLater = false;
    bool writtenLater = false;
    for (const ScalarAccess& r : after.scalars) {
      if (r.scalar != w.scalar) continue;
      if (r.isWrite)
        writtenLater = true;
      else
        readLater = true;
    }
    if (kind == ScalarDefKind::Reduction) {
      // The combined value lands in the shared slot under a mutex; any
      // later touch (read or conflicting write) needs all contributions.
      if (readLater || writtenLater) return ScalarComm::General;
    } else if (kind == ScalarDefKind::Master) {
      if (readLater) worst = ScalarComm::Master;
      // A later Master write to the same scalar happens on the same
      // processor, in program order: no synchronization needed.
    }
  }
  return worst;
}

SyncOptimizer::SyncOptimizer(const ir::Program& prog,
                             part::Decomposition& decomp,
                             OptimizerOptions options)
    : prog_(&prog),
      decomp_(&decomp),
      options_(options),
      comm_(prog, decomp, analyzerOptions(options)) {}

SyncPoint SyncOptimizer::decideBoundary(const PairResult& arrays,
                                        ScalarComm scalars) {
  if (!arrays.comm && scalars == ScalarComm::None) return SyncPoint::none();
  // Counters replace barriers only for pure array producer-consumer flow.
  // Scalar flow out of a guarded (processor-0) definition keeps a barrier:
  // the producer must not overwrite the value while stragglers still read
  // the previous one, and only a barrier makes the producer wait.
  bool counterable = options_.enableCounters && arrays.comm && arrays.exact &&
                     !arrays.farLeft && !arrays.farRight &&
                     scalars == ScalarComm::None;
  if (counterable) {
    // The *destination* (later) side waits.  right1 means the consumer is
    // the producer's right neighbor (q == p+1), so the consumer waits on
    // its LEFT neighbor, and symmetrically for left1.
    return SyncPoint::counter(/*left=*/arrays.right1,
                              /*right=*/arrays.left1,
                              /*master=*/false);
  }
  return SyncPoint::barrier();
}

std::string SyncOptimizer::describeNode(const RegionNode& node) const {
  std::string head;
  switch (node.kind) {
    case NodeKind::ParallelLoop:
      head = "DOALL ";
      break;
    case NodeKind::SeqLoop:
      head = "DO ";
      break;
    case NodeKind::Replicated:
      return "replicated statement";
    case NodeKind::Guarded:
      return "guarded statement";
  }
  return head + prog_->space()->name(node.stmt->loop().index);
}

void SyncOptimizer::planSeqLoopNode(RegionNode& node,
                                    std::vector<const ir::Stmt*>& sharedLoops,
                                    AccessSet& carryOut) {
  const int level = static_cast<int>(sharedLoops.size());
  sharedLoops.push_back(node.stmt);

  // Plan the body's internal boundaries first.
  AccessSet bodyCarry;
  planSequence(node.body, sharedLoops, bodyCarry);

  // Back-edge decision: communication from any iteration to any later one.
  AccessSet bodyAll = collectAccesses(*node.stmt, {sharedLoops.begin(),
                                                   sharedLoops.end() - 1});
  ++stats_.backEdges;
  PairResult any = comm_.analyzeBoundary(bodyAll, bodyAll, sharedLoops, level,
                                         LevelRel::LaterAny);
  ScalarComm scalars = scalarCommBetween(bodyAll, bodyAll);

  BoundaryRecord record;
  record.region = currentRegion_;
  record.site = BoundaryRecord::Site::BackEdge;
  record.where = "back edge of " + describeNode(node);
  record.arrays = any;
  record.scalars = scalars;

  statBackEdges.add();
  if (!any.comm && scalars == ScalarComm::None) {
    node.backEdge = SyncPoint::none();
    ++stats_.backEdgesEliminated;
    statBackEdgeEliminated.add();
  } else {
    SyncPoint decision = SyncPoint::barrier();
    // Pipelining is restricted to pure array flow (scalars == None): a
    // master-produced scalar redefined every iteration needs the producer
    // to wait for all consumers of the previous value, which only a
    // barrier provides.
    if (options_.enableCounters && scalars == ScalarComm::None) {
      // Sound only when nothing crosses more than one iteration, and
      // within one iteration only adjacent processors.
      PairResult beyond = comm_.analyzeBoundary(
          bodyAll, bodyAll, sharedLoops, level, LevelRel::LaterBeyondOne);
      if (!beyond.comm) {
        PairResult byOne = comm_.analyzeBoundary(
            bodyAll, bodyAll, sharedLoops, level, LevelRel::LaterByOne);
        if (byOne.exact && !byOne.farLeft && !byOne.farRight) {
          decision = SyncPoint::counter(/*left=*/byOne.right1,
                                        /*right=*/byOne.left1,
                                        /*master=*/false);
          ++stats_.backEdgesPipelined;
        }
      }
    }
    if (decision.kind == SyncPoint::Kind::Counter)
      statBackEdgePipelined.add();
    else
      statBackEdgeBarrier.add();
    node.backEdge = decision;
  }
  record.decision = node.backEdge;
  report_.push_back(std::move(record));
  sharedLoops.pop_back();

  // What remains unfenced after the loop for the parent group?  A barrier
  // back edge fences every iteration (loops are assumed non-zero-trip);
  // otherwise carry what the body left unfenced after its own last
  // internal barrier.
  if (node.backEdge.kind == SyncPoint::Kind::Barrier) {
    carryOut = AccessSet{};
  } else {
    bool bodyHasBarrier = false;
    for (std::size_t i = 0; i + 1 < node.body.size(); ++i)
      if (node.body[i].after.kind == SyncPoint::Kind::Barrier)
        bodyHasBarrier = true;
    if (bodyHasBarrier) {
      carryOut = bodyCarry;
    } else {
      carryOut = bodyAll;
    }
  }
}

void SyncOptimizer::planSequence(std::vector<RegionNode>& nodes,
                                 std::vector<const ir::Stmt*>& sharedLoops,
                                 AccessSet& carryOut) {
  AccessSet group;  // accesses since the last barrier
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    RegionNode& node = nodes[i];

    // Accesses of this node, with loop chains rooted at the region.
    AccessSet nodeAcc = collectAccesses(*node.stmt, sharedLoops);
    AccessSet nodeCarry = nodeAcc;  // what the node leaves unfenced

    // Decide the boundary *before* this node (the previous node's after).
    if (i > 0) {
      ++stats_.boundaries;
      PairResult arrays = comm_.analyzeBoundary(group, nodeAcc, sharedLoops,
                                                -1, LevelRel::Equal);
      ScalarComm scalars = scalarCommBetween(group, nodeAcc);
      SyncPoint decision = decideBoundary(arrays, scalars);
      nodes[i - 1].after = decision;
      BoundaryRecord record;
      record.region = currentRegion_;
      record.site = BoundaryRecord::Site::Interior;
      record.where = "between " + describeNode(nodes[i - 1]) + " and " +
                     describeNode(node);
      record.arrays = arrays;
      record.scalars = scalars;
      record.decision = decision;
      report_.push_back(std::move(record));
      statBoundaries.add();
      switch (decision.kind) {
        case SyncPoint::Kind::None:
          ++stats_.eliminated;
          statInteriorEliminated.add();
          break;
        case SyncPoint::Kind::Counter:
          ++stats_.counters;
          statInteriorCounter.add();
          break;
        case SyncPoint::Kind::Barrier:
          ++stats_.barriers;
          statInteriorBarrier.add();
          break;
      }
      if (decision.kind == SyncPoint::Kind::Barrier)
        group = AccessSet{};  // new group starts after a full fence
    }

    if (node.kind == NodeKind::SeqLoop) {
      planSeqLoopNode(node, sharedLoops, nodeCarry);
      if (node.backEdge.kind == SyncPoint::Kind::Barrier ||
          node.backEdge.kind == SyncPoint::Kind::Counter) {
        // Counters do not fence, barriers do; nodeCarry already reflects
        // the distinction.  A barrier inside the loop also fences the
        // preceding group.
        if (node.backEdge.kind == SyncPoint::Kind::Barrier)
          group = AccessSet{};
      }
      // Internal body barriers (with a non-barrier back edge) also fence
      // the preceding group: every processor passes them each iteration.
      bool bodyHasBarrier = false;
      for (std::size_t j = 0; j + 1 < node.body.size(); ++j)
        if (node.body[j].after.kind == SyncPoint::Kind::Barrier)
          bodyHasBarrier = true;
      if (bodyHasBarrier) group = AccessSet{};
    }

    group.merge(nodeCarry);
    // The boundary after the last node of this sequence belongs to the
    // caller (region join or seq-loop back edge).
    node.after = SyncPoint::none();
    if (i + 1 < nodes.size()) {
      // Will be overwritten by the next iteration's decision; initialize
      // to barrier so an early exit stays conservative.
      node.after = SyncPoint::barrier();
    }
  }
  carryOut = std::move(group);
}

namespace {

/// The shape-only boundary walk: interior boundary (i-1, i) before node
/// i's internals, a seq loop's body boundaries before its back edge —
/// exactly the order planSequence/planSeqLoopNode push BoundaryRecords,
/// so record k describes site k.
void assignSitesInSequence(std::vector<RegionNode>& nodes, int& next) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i > 0) nodes[i - 1].after.site = next++;
    if (nodes[i].kind == NodeKind::SeqLoop) {
      assignSitesInSequence(nodes[i].body, next);
      nodes[i].backEdge.site = next++;
    }
  }
}

}  // namespace

int SyncOptimizer::assignBoundarySites(RegionProgram& plan) {
  int next = 0;
  for (RegionProgram::Item& item : plan.items) {
    if (!item.isRegion()) continue;
    assignSitesInSequence(item.region->nodes, next);
  }
  return next;
}

RegionProgram SyncOptimizer::run() {
  auto start = std::chrono::steady_clock::now();
  RegionProgram regions = buildRegions(*prog_);
  stats_ = OptStats{};
  report_.clear();
  for (RegionProgram::Item& item : regions.items) {
    if (!item.isRegion()) continue;
    ++stats_.regions;
    currentRegion_ = item.region->id;
    stats_.regionNodes += item.region->nodeCount();
    std::vector<const ir::Stmt*> shared;
    AccessSet carry;
    planSequence(item.region->nodes, shared, carry);
  }
  int sites = assignBoundarySites(regions);
  SPMD_ASSERT(static_cast<std::size_t>(sites) == report_.size(),
              "boundary site walk diverged from the decision log");
  for (std::size_t k = 0; k < report_.size(); ++k)
    report_[k].syncSite = static_cast<int>(k);
  comm::CommAnalyzer::CacheStats cacheStats = comm_.stats();
  stats_.pairQueries = cacheStats.pairQueries;
  stats_.cacheHits = cacheStats.cacheHits;
  stats_.dedupHits = cacheStats.dedupHits;
  stats_.scanCacheHits = cacheStats.scanHits;
  stats_.analysisSeconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return regions;
}

RegionProgram SyncOptimizer::runBarriersOnly() {
  RegionProgram regions = buildRegions(*prog_);
  stats_ = OptStats{};
  for (const RegionProgram::Item& item : regions.items) {
    if (!item.isRegion()) continue;
    ++stats_.regions;
    stats_.regionNodes += item.region->nodeCount();
    stats_.boundaries += item.region->boundaryCount();
    stats_.barriers += item.region->boundaryCount();
  }
  // Same shape-only numbering as run(): a barriers-only trace's site s is
  // the same program point as the optimized plan's site s.
  assignBoundarySites(regions);
  return regions;
}

}  // namespace spmd::core
