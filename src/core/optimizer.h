// The synchronization optimizer: greedy barrier elimination and counter
// replacement over SPMD regions (the paper's core contribution, §3.2-3.3).
//
// For each region, boundaries between statement groups start as barriers
// (the fork-join plan) and are greedily weakened:
//
//   1. Start with the first group; record its definitions and references.
//   2. Against the next group, compare refs vs defs, defs vs refs, and
//      defs vs defs (true, anti, output dependences).
//   3. Test for loop-independent cross-processor communication at the
//      current nesting level.  If none exists, eliminate the barrier and
//      merge the groups.
//   4. Otherwise, if all communication is nearest-neighbor (and scalar
//      flow at most master-to-all), replace the barrier with counters;
//      else place a barrier and start a new group.
//
// Sequential-loop back edges get the same treatment with loop-carried
// relations: no cross-iteration communication eliminates the per-iteration
// barrier outright; communication confined to *adjacent* iterations and
// *adjacent* processors is pipelined with counters (paper §3.3).
//
// Soundness notes.
//   * Groups accumulate across eliminated and counter boundaries and reset
//     only at barriers, so every test covers all statements since the last
//     full synchronization.  Counter posts execute after all of a
//     processor's preceding group work, so a counter covers communication
//     from the entire group, not just the previous node.
//   * Loops inside SPMD regions are assumed to execute at least one
//     iteration (their barriers fence preceding work); the kernel suite
//     satisfies this by construction.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "comm/comm_analysis.h"
#include "core/spmd_region.h"

namespace spmd::core {

struct OptimizerOptions {
  comm::CommAnalyzer::Mode analysisMode =
      comm::CommAnalyzer::Mode::Communication;
  bool enableCounters = true;  ///< allow barrier -> counter replacement
  poly::FMOptions fm;

  // Compile-time knobs, forwarded to CommAnalyzer::Options.  All of them
  // are result-preserving: plans and decision reports are byte-identical
  // for every combination (see tests/integration/plan_determinism_test.cc).
  bool memoCache = true;             ///< hashed pair-result memoization
  bool dedupAccesses = true;         ///< per-boundary structural pair dedup
  bool sharedPrefixProjection = true;  ///< project once, branch on residual
  bool scanCache = true;             ///< per-analyzer FM scan memo
  int analysisThreads = 1;           ///< pair-query workers per boundary
};

struct OptStats {
  std::size_t regions = 0;
  std::size_t regionNodes = 0;
  std::size_t boundaries = 0;    ///< sync boundaries examined
  std::size_t eliminated = 0;    ///< boundaries proven communication-free
  std::size_t counters = 0;      ///< barriers replaced by counters
  std::size_t barriers = 0;      ///< barriers remaining
  std::size_t backEdges = 0;
  std::size_t backEdgesEliminated = 0;
  std::size_t backEdgesPipelined = 0;
  std::size_t pairQueries = 0;  ///< communication pair systems scanned
  std::size_t cacheHits = 0;    ///< pair queries answered by memoization
  std::size_t dedupHits = 0;    ///< pairs collapsed by structural dedup
  std::uint64_t scanCacheHits = 0;  ///< FM scans served from the scan memo
  double analysisSeconds = 0.0;
};

/// Scalar value flow across a boundary.
enum class ScalarComm {
  None,    ///< only private (replicated) scalar traffic
  Master,  ///< processor 0 produces, others consume (counter-able)
  General  ///< reduction or mixed flow: requires a barrier
};

ScalarComm scalarCommBetween(const analysis::AccessSet& before,
                             const analysis::AccessSet& after);

/// How one scalar definition site executes in the SPMD model (shared with
/// the executor, which must realize the same convention).
enum class ScalarDefKind {
  Private,    ///< privatizable: every processor computes its own copy
  Master,     ///< guarded to processor 0, value published to the shared slot
  Reduction,  ///< per-processor partials combined into the shared slot
};

ScalarDefKind classifyScalarDef(const analysis::ScalarAccess& w);

/// A per-boundary decision record (see core/report.h for rendering).
struct BoundaryRecord {
  enum class Site { Interior, BackEdge };

  int region = 0;
  Site site = Site::Interior;
  std::string where;  ///< e.g. "after DOALL i" or "back edge of DO t"
  comm::PairResult arrays;
  ScalarComm scalars = ScalarComm::None;
  SyncPoint decision;
  /// Program-wide boundary site label (== decision.site): joins this
  /// record with trace events and blame buckets recorded at the site.
  int syncSite = -1;
};

class SyncOptimizer {
 public:
  SyncOptimizer(const ir::Program& prog, part::Decomposition& decomp,
                OptimizerOptions options = OptimizerOptions());

  /// Forms regions and computes the optimized synchronization plan.
  RegionProgram run();

  /// Forms regions but leaves every boundary a barrier (region merging
  /// only — the "no sync optimization" plan for merged execution).
  RegionProgram runBarriersOnly();

  const OptStats& stats() const { return stats_; }

  /// Per-boundary decision log from the last run() (see core/report.h).
  const std::vector<BoundaryRecord>& report() const { return report_; }

  /// Stamps SyncPoint::site on every boundary of the plan — a shape-only
  /// pre-order walk (interior boundary before a node, then a seq loop's
  /// body, then its back edge), so any two plans over the same program get
  /// identical numbering regardless of the sync decisions.  Returns the
  /// number of sites assigned.  run()/runBarriersOnly() call this; it is
  /// exposed for tests and for plans built elsewhere.
  static int assignBoundarySites(RegionProgram& plan);

 private:
  SyncPoint decideBoundary(const comm::PairResult& arrays, ScalarComm scalars);
  void planSequence(std::vector<RegionNode>& nodes,
                    std::vector<const ir::Stmt*>& sharedLoops,
                    analysis::AccessSet& carryOut);
  void planSeqLoopNode(RegionNode& node,
                       std::vector<const ir::Stmt*>& sharedLoops,
                       analysis::AccessSet& carryOut);
  std::string describeNode(const RegionNode& node) const;

  const ir::Program* prog_;
  part::Decomposition* decomp_;
  OptimizerOptions options_;
  comm::CommAnalyzer comm_;
  OptStats stats_;
  std::vector<BoundaryRecord> report_;
  int currentRegion_ = 0;
};

}  // namespace spmd::core
