// Synchronization points: what the optimizer places at each boundary.
//
// A barrier orders everything; a counter synchronizes producer/consumer
// processor *pairs* only (paper §2): "Processors defining (producing)
// values can increment a counter, and processors accessing (consuming) the
// values wait until the counter is incremented to the proper value."
//
// Counter execution model (uniform for intra-iteration boundaries and
// sequential-loop back-edges): every processor posts its own slot of the
// sync point's counter array, then waits until the specified producers'
// slots reach the same occurrence number.  Because every processor passes
// each sync point the same number of times per region execution, the
// occurrence number is tracked with a thread-local count — no centralized
// coordination.  Posting before waiting makes deadlock impossible.
#pragma once

#include <optional>
#include <string>

#include "ir/program.h"
#include "support/diag.h"

namespace spmd::core {

struct SyncPoint {
  enum class Kind {
    None,     ///< boundary eliminated: no data crosses processors here
    Barrier,  ///< all-processor barrier
    Counter,  ///< pairwise counter synchronization
  };

  Kind kind = Kind::None;

  // Counter wait set (who this processor must wait for).
  bool waitLeft = false;    ///< wait for processor me-1 (if any)
  bool waitRight = false;   ///< wait for processor me+1 (if any)
  bool waitMaster = false;  ///< wait for processor 0 (guarded-scalar producer)

  /// Unique id within the enclosing region; assigned during lowering.
  int id = -1;

  /// Boundary site: a program-wide stable label assigned by the optimizer
  /// to EVERY examined boundary (eliminated ones included), in a traversal
  /// that depends only on the region-tree shape — so the numbering is
  /// identical across full/nocounters/barriers plans of one program, and
  /// trace events recorded at a site line up with the optimizer's
  /// per-boundary decision table.  -1 for sync points that are not
  /// optimizer boundaries (fork-join barriers, team-level events).
  int site = -1;

  bool isSync() const { return kind != Kind::None; }

  static SyncPoint none() { return SyncPoint{}; }
  static SyncPoint barrier() {
    SyncPoint s;
    s.kind = Kind::Barrier;
    return s;
  }
  static SyncPoint counter(bool left, bool right, bool master) {
    SyncPoint s;
    s.kind = Kind::Counter;
    s.waitLeft = left;
    s.waitRight = right;
    s.waitMaster = master;
    return s;
  }

  std::string toString() const {
    switch (kind) {
      case Kind::None:
        return "none";
      case Kind::Barrier:
        return "barrier";
      case Kind::Counter: {
        std::string s = "counter(";
        if (waitLeft) s += "L";
        if (waitRight) s += "R";
        if (waitMaster) s += "M";
        s += ")";
        return s;
      }
    }
    SPMD_UNREACHABLE("bad SyncPoint::Kind");
  }

  /// Inverse of toString() over kind and wait set (id/site are execution
  /// metadata, not part of the printed form).  Strict: the wait flags must
  /// appear in L, R, M order, exactly as toString emits them.
  static std::optional<SyncPoint> parse(const std::string& text) {
    if (text == "none") return none();
    if (text == "barrier") return barrier();
    const std::string prefix = "counter(";
    if (text.size() < prefix.size() + 1 ||
        text.compare(0, prefix.size(), prefix) != 0 || text.back() != ')')
      return std::nullopt;
    std::string flags = text.substr(prefix.size(),
                                    text.size() - prefix.size() - 1);
    SyncPoint s = counter(false, false, false);
    std::size_t i = 0;
    if (i < flags.size() && flags[i] == 'L') s.waitLeft = true, ++i;
    if (i < flags.size() && flags[i] == 'R') s.waitRight = true, ++i;
    if (i < flags.size() && flags[i] == 'M') s.waitMaster = true, ++i;
    if (i != flags.size()) return std::nullopt;
    return s;
  }
};

}  // namespace spmd::core
