#include "core/spmd_region.h"

namespace spmd::core {

const char* nodeKindName(NodeKind kind) {
  switch (kind) {
    case NodeKind::ParallelLoop:
      return "parallel-loop";
    case NodeKind::SeqLoop:
      return "seq-loop";
    case NodeKind::Replicated:
      return "replicated";
    case NodeKind::Guarded:
      return "guarded";
  }
  SPMD_UNREACHABLE("bad NodeKind");
}

namespace {

std::size_t countNodes(const std::vector<RegionNode>& nodes) {
  std::size_t n = 0;
  for (const RegionNode& node : nodes) n += 1 + countNodes(node.body);
  return n;
}

std::size_t countBoundaries(const std::vector<RegionNode>& nodes,
                            bool lastIsImplicit) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const RegionNode& node = nodes[i];
    // The boundary after the last node of a sequence is implicit: at the
    // region top level it is the join, inside a seq loop it is the back
    // edge (counted separately below).
    if (!(lastIsImplicit && i + 1 == nodes.size())) ++n;
    if (node.kind == NodeKind::SeqLoop) {
      ++n;  // back edge
      n += countBoundaries(node.body, /*lastIsImplicit=*/true);
    }
  }
  return n;
}

void setAllBarriers(std::vector<RegionNode>& nodes, bool lastIsImplicit) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (!(lastIsImplicit && i + 1 == nodes.size()))
      nodes[i].after = SyncPoint::barrier();
    if (nodes[i].kind == NodeKind::SeqLoop) {
      nodes[i].backEdge = SyncPoint::barrier();
      setAllBarriers(nodes[i].body, /*lastIsImplicit=*/true);
    }
  }
}

}  // namespace

std::size_t SpmdRegion::nodeCount() const { return countNodes(nodes); }

std::size_t SpmdRegion::boundaryCount() const {
  return countBoundaries(nodes, /*lastIsImplicit=*/true);
}

std::size_t RegionProgram::regionCount() const {
  std::size_t n = 0;
  for (const Item& item : items)
    if (item.isRegion()) ++n;
  return n;
}

bool containsParallelLoop(const ir::Stmt* stmt) {
  if (!stmt->isLoop()) return false;
  if (stmt->loop().parallel) return true;
  for (const ir::StmtPtr& child : stmt->loop().body)
    if (containsParallelLoop(child.get())) return true;
  return false;
}

namespace {

bool readsArrays(const ir::Expr& e) {
  std::vector<ir::ArrayRead> reads;
  ir::collectArrayReads(e, reads);
  return !reads.empty();
}

bool touchesArrays(const ir::Stmt* stmt) {
  switch (stmt->kind()) {
    case ir::Stmt::Kind::ArrayAssign:
      return true;
    case ir::Stmt::Kind::ScalarAssign:
      return readsArrays(stmt->scalarAssign().rhs);
    case ir::Stmt::Kind::Loop:
      for (const ir::StmtPtr& child : stmt->loop().body)
        if (touchesArrays(child.get())) return true;
      return false;
  }
  SPMD_UNREACHABLE("bad Stmt kind");
}

}  // namespace

std::optional<RegionNode> classifyStmt(const ir::Stmt* stmt) {
  switch (stmt->kind()) {
    case ir::Stmt::Kind::ArrayAssign:
      // A lone array assignment runs under an ownership guard.
      return RegionNode{NodeKind::Guarded, stmt, {}, {}, {}};
    case ir::Stmt::Kind::ScalarAssign: {
      const ir::ScalarAssign& s = stmt->scalarAssign();
      // Privatizable scalar computation: replicate across processors
      // (paper §2.2 "replicated computations").  Anything reading arrays
      // or reducing must be guarded and its value communicated.
      if (s.reduction == ir::ReductionOp::None && !readsArrays(s.rhs))
        return RegionNode{NodeKind::Replicated, stmt, {}, {}, {}};
      return RegionNode{NodeKind::Guarded, stmt, {}, {}, {}};
    }
    case ir::Stmt::Kind::Loop: {
      const ir::Loop& l = stmt->loop();
      if (l.parallel)
        return RegionNode{NodeKind::ParallelLoop, stmt, {}, {}, {}};
      if (!containsParallelLoop(stmt)) {
        // Sequential loop with no parallelism inside: replicate pure
        // scalar computation, guard anything touching arrays.
        return RegionNode{touchesArrays(stmt) ? NodeKind::Guarded
                                              : NodeKind::Replicated,
                          stmt,
                          {},
                          {},
                          {}};
      }
      // Sequential loop carrying parallel loops: the loop becomes a
      // SeqLoop region node with a recursively classified body.
      RegionNode node{NodeKind::SeqLoop, stmt, {}, {}, {}};
      for (const ir::StmtPtr& child : l.body) {
        std::optional<RegionNode> c = classifyStmt(child.get());
        if (!c) return std::nullopt;
        node.body.push_back(std::move(*c));
      }
      return node;
    }
  }
  SPMD_UNREACHABLE("bad Stmt kind");
}

RegionProgram buildRegions(const ir::Program& prog) {
  RegionProgram out;
  int nextRegionId = 0;

  std::vector<RegionNode> pending;      // candidate run of region nodes
  std::vector<const ir::Stmt*> origin;  // their source statements
  bool pendingHasParallel = false;

  auto flush = [&] {
    if (pending.empty()) return;
    if (pendingHasParallel) {
      SpmdRegion region;
      region.id = nextRegionId++;
      region.nodes = std::move(pending);
      // Default (unoptimized) plan: a barrier at every boundary.
      setAllBarriers(region.nodes, /*lastIsImplicit=*/true);
      RegionProgram::Item item;
      item.region = std::move(region);
      out.items.push_back(std::move(item));
    } else {
      // A run with no parallel loop stays master-sequential.
      for (const ir::Stmt* s : origin) {
        RegionProgram::Item item;
        item.sequential = s;
        out.items.push_back(std::move(item));
      }
    }
    pending.clear();
    origin.clear();
    pendingHasParallel = false;
  };

  for (const ir::StmtPtr& stmt : prog.topLevel()) {
    std::optional<RegionNode> node = classifyStmt(stmt.get());
    if (node) {
      pendingHasParallel =
          pendingHasParallel || containsParallelLoop(stmt.get());
      pending.push_back(std::move(*node));
      origin.push_back(stmt.get());
    } else {
      flush();
      RegionProgram::Item item;
      item.sequential = stmt.get();
      out.items.push_back(std::move(item));
    }
  }
  flush();
  return out;
}

}  // namespace spmd::core
