// Optimization reporting: renders the per-boundary decision records that
// SyncOptimizer collects (the equivalent of a compiler's -fopt-report for
// this pass).
#pragma once

#include <string>
#include <vector>

#include "core/optimizer.h"

namespace spmd::core {

/// One-line human-readable justification for a boundary decision.
std::string boundaryReason(const BoundaryRecord& record);

/// Renders all records as an indented report, grouped by region.
std::string renderReport(const std::vector<BoundaryRecord>& records);

}  // namespace spmd::core
