// The physical layer of the two-level sync IR.
//
// The optimizer emits a *logical* synchronization plan: each region
// boundary carries a SyncPoint naming what must happen there (barrier,
// pairwise counter, nothing).  Real targets do not have an unbounded
// supply of synchronization hardware — an NPU exposes a fixed file of
// barrier registers, a cluster a fixed set of counter/event slots — so a
// post-pass (src/alloc) maps every logical sync point onto K physical
// barrier registers and M physical counter slots, reusing a resource once
// its previous occupant is provably finished.  The result is this map:
// for each region item, logical id -> physical resource, plus the
// feasibility verdict and the allocator's retry evidence.
//
// The split mirrors npu_compiler's lp_scheduler (SNIPPETS.md Snippet 1):
// schedule against a bound, run an independent checker, and retry with a
// less aggressive packing when the checker rejects the assignment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spmd::core {

/// Resource bounds for physical allocation.  0 means unbounded (the pool
/// is sized by whatever the allocator ends up using); allocation is
/// *active* once either bound is given.
struct PhysicalSyncOptions {
  int barriers = 0;  ///< physical barrier registers (K); 0 = unbounded
  int counters = 0;  ///< physical counter slots (M); 0 = unbounded

  bool enabled() const { return barriers > 0 || counters > 0; }
};

/// Physical assignment for one region-program item.  Logical ids index
/// these vectors: they are assigned by the same pre-order walk the
/// lowering uses (after before back edge before children), one dense id
/// stream per resource kind, so `barrierPhys[SyncPoint::id]` and
/// `counterPhys[SyncPoint::id]` resolve the engine's dispatch.
struct PhysicalItemMap {
  bool isRegion = false;

  std::vector<int> barrierPhys;  ///< logical barrier id -> register
  std::vector<int> counterPhys;  ///< logical counter id -> slot
  /// Logical id -> optimizer boundary site, for resolving trace sites to
  /// physical resources in --blame / spmdtrace output.
  std::vector<std::int32_t> barrierSites;
  std::vector<std::int32_t> counterSites;

  int barriersUsed = 0;  ///< distinct registers this region occupies
  int countersUsed = 0;  ///< distinct slots this region occupies
  int attempts = 0;      ///< coloring attempts (>= 1 for regions)
  int reuseDistance = 0; ///< the distance whose assignment passed the checker
};

/// The whole program's physical sync assignment.
struct PhysicalSyncMap {
  PhysicalSyncOptions bounds;
  /// Parallel to RegionProgram::items (non-region items get empty maps).
  std::vector<PhysicalItemMap> items;

  int barriersUsed = 0;  ///< max over regions: registers the pool needs
  int countersUsed = 0;  ///< max over regions: slots the pool needs
  int retries = 0;       ///< checker-rejected attempts across all regions

  bool feasible = true;
  std::string infeasibleReason;  ///< set when !feasible

  /// Fraction of the bounded pool in use (0 when the pool is unbounded —
  /// there is no denominator to report against).
  double barrierUtilization() const {
    return bounds.barriers > 0
               ? static_cast<double>(barriersUsed) / bounds.barriers
               : 0.0;
  }
  double counterUtilization() const {
    return bounds.counters > 0
               ? static_cast<double>(countersUsed) / bounds.counters
               : 0.0;
  }

  /// Deterministic rendering of the complete assignment; the allocation-
  /// determinism tests byte-compare this across runs and job counts.
  std::string toString() const;
};

}  // namespace spmd::core
