// Compilation-as-a-service: a concurrent compile/run server over a
// Unix-domain socket (spmdopt --serve=SOCK).
//
// Architecture:
//
//   accept thread ──► one reader thread per connection
//                         │  parses nothing; frames lines and enqueues
//                         ▼
//                bounded request queue  ── full? ──► structured
//                         │                          "overloaded" reject
//                         ▼                          (written by the reader)
//                rt::ThreadTeam workers (broadcast once via a pump
//                thread; each worker pops jobs until stop)
//                         │
//                         ▼
//                driver::Compilation session per request, attached to
//                the shared ArtifactCache — identical programs/options
//                reuse parse → plan → lowered/native artifacts
//
// Admission control is the bounded queue: readers never block on a slow
// worker pool; past the bound the client gets an immediate
// {"ok":false,"error":{"kind":"overloaded",...}} and may retry.
// Responses carry the request "id" and may be written out of order for
// pipelined clients; writes to one connection are serialized by a
// per-connection mutex.
//
// The server never trusts the wire: request parsing is depth-bounded
// (support/json_reader.h) and field-validated before a worker sees it.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "driver/artifact_cache.h"
#include "runtime/team.h"
#include "service/protocol.h"

namespace spmd::service {

struct ServerOptions {
  std::string socketPath;
  int workers = 4;
  std::size_t queueCapacity = 64;
  /// Shared artifact cache; null uses the process-wide cache.
  driver::ArtifactCache* cache = nullptr;
};

class Server {
 public:
  /// Monotonic request-level counts.
  struct Stats {
    std::uint64_t accepted = 0;    ///< connections accepted
    std::uint64_t served = 0;      ///< requests answered by a worker
    std::uint64_t overloaded = 0;  ///< requests rejected by admission
    std::uint64_t invalid = 0;     ///< malformed requests answered with
                                   ///< a bad-request error
  };

  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the socket and starts accepting; false (with `error`) when
  /// the socket cannot be created.
  bool start(std::string* error = nullptr);

  /// Blocks until stop() is called or a shutdown request arrives.
  void wait();

  /// Stops accepting, drains in-flight work, joins every thread, and
  /// removes the socket file.  Idempotent.
  void stop();

  bool running() const { return running_.load(); }
  const std::string& socketPath() const { return options_.socketPath; }
  Stats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex writeMutex;
  };
  struct Job {
    std::shared_ptr<Connection> conn;
    std::string line;
    std::chrono::steady_clock::time_point arrival;
  };

  void acceptLoop();
  void readerLoop(std::shared_ptr<Connection> conn);
  void workerLoop();
  void process(const Job& job);
  std::string handle(const Request& request,
                     std::chrono::steady_clock::time_point arrival);
  std::string handleCompile(const Request& request, bool run,
                            std::chrono::steady_clock::time_point arrival);
  void send(Connection& conn, const std::string& line);

  ServerOptions options_;
  driver::ArtifactCache* cache_ = nullptr;
  int listenFd_ = -1;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdownRequested_{false};

  std::thread acceptThread_;
  std::thread pumpThread_;  ///< hosts the worker team's broadcast
  std::unique_ptr<rt::ThreadTeam> team_;

  std::mutex queueMutex_;
  std::condition_variable queueCv_;
  std::deque<Job> queue_;

  std::mutex connMutex_;
  std::vector<std::shared_ptr<Connection>> connections_;
  std::vector<std::thread> readers_;

  mutable std::mutex statsMutex_;
  Stats stats_;

  std::mutex waitMutex_;
  std::condition_variable waitCv_;
};

}  // namespace spmd::service
