#include "service/protocol.h"

#include <sstream>

#include "support/json.h"
#include "support/json_reader.h"

namespace spmd::service {

const char* opName(Request::Op op) {
  switch (op) {
    case Request::Op::Ping:
      return "ping";
    case Request::Op::Compile:
      return "compile";
    case Request::Op::Run:
      return "run";
    case Request::Op::Stats:
      return "stats";
    case Request::Op::Shutdown:
      return "shutdown";
  }
  return "ping";
}

bool parseRequest(const std::string& line, Request* request,
                  std::string* error) {
  std::string parseError;
  JsonValuePtr doc = parseJson(line, &parseError);
  if (doc == nullptr) {
    *error = "malformed request: " + parseError;
    return false;
  }
  if (!doc->isObject()) {
    *error = "request must be a JSON object";
    return false;
  }

  Request req;
  const std::string op = doc->getString("op", "");
  if (op == "ping") {
    req.op = Request::Op::Ping;
  } else if (op == "compile") {
    req.op = Request::Op::Compile;
  } else if (op == "run") {
    req.op = Request::Op::Run;
  } else if (op == "stats") {
    req.op = Request::Op::Stats;
  } else if (op == "shutdown") {
    req.op = Request::Op::Shutdown;
  } else {
    *error = op.empty() ? "missing op" : "unknown op \"" + op + "\"";
    return false;
  }

  req.id = doc->getInt("id", 0);
  req.source = doc->getString("source", "");
  req.name = doc->getString("name", "<service>");
  req.emitListing = doc->getBool("emit", false);

  if (const JsonValue* options = doc->get("options");
      options != nullptr && options->isObject()) {
    const std::string mode = options->getString("mode", "optimize");
    if (mode == "barriers") {
      req.barriersOnly = true;
    } else if (mode != "optimize") {
      *error = "unknown mode \"" + mode + "\"";
      return false;
    }
    req.enableCounters = options->getBool("counters", true);
    req.physicalBarriers =
        static_cast<int>(options->getInt("physical_barriers", 0));
    req.physicalCounters =
        static_cast<int>(options->getInt("physical_counters", 0));
    if (req.physicalBarriers < 0 || req.physicalCounters < 0) {
      *error = "physical bounds must be >= 0";
      return false;
    }
  }

  req.threads = static_cast<int>(doc->getInt("threads", 4));
  if (req.threads < 1 || req.threads > 256) {
    *error = "threads must be in [1, 256]";
    return false;
  }
  req.engine = doc->getString("engine", "lowered");
  if (req.engine != "lowered" && req.engine != "interpreted" &&
      req.engine != "native") {
    *error = "unknown engine \"" + req.engine + "\"";
    return false;
  }

  if (const JsonValue* symbols = doc->get("symbols");
      symbols != nullptr && symbols->isObject()) {
    for (const auto& [name, value] : symbols->members()) {
      if (value == nullptr || value->kind() != JsonValue::Kind::Number) {
        *error = "symbol \"" + name + "\" must be a number";
        return false;
      }
      req.symbols.emplace_back(name, value->asInt());
    }
  }

  if ((req.op == Request::Op::Compile || req.op == Request::Op::Run) &&
      req.source.empty()) {
    *error = "compile/run needs a non-empty \"source\"";
    return false;
  }

  *request = std::move(req);
  return true;
}

std::string serializeRequest(const Request& request) {
  std::ostringstream os;
  JsonWriter json(os, /*compact=*/true);
  json.object();
  json.field("op", opName(request.op));
  json.field("id", request.id);
  if (!request.source.empty()) json.field("source", request.source);
  json.field("name", request.name);
  if (request.emitListing) json.field("emit", true);
  json.field("options").object();
  json.field("mode", request.barriersOnly ? "barriers" : "optimize");
  json.field("counters", request.enableCounters);
  json.field("physical_barriers", request.physicalBarriers);
  json.field("physical_counters", request.physicalCounters);
  json.close();
  json.field("threads", request.threads);
  json.field("engine", request.engine);
  if (!request.symbols.empty()) {
    json.field("symbols").object();
    for (const auto& [name, value] : request.symbols)
      json.field(name, value);
    json.close();
  }
  json.close();
  return os.str();
}

driver::PipelineOptions pipelineOptions(const Request& request) {
  driver::PipelineOptions options;
  options.barriersOnly = request.barriersOnly;
  options.optimizer.enableCounters = request.enableCounters;
  options.physical.barriers = request.physicalBarriers;
  options.physical.counters = request.physicalCounters;
  return options;
}

}  // namespace spmd::service
