// Blocking client for the spmdopt service protocol (service/protocol.h):
// connects to the server's Unix socket, writes one request line, reads
// one response line.  sendLine()/recvLine() are exposed separately so
// tests can pipeline several requests on one connection and observe
// out-of-order responses.
#pragma once

#include <string>

#include "service/protocol.h"
#include "support/json_reader.h"

namespace spmd::service {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to the server's socket; false (with `error`) when the
  /// socket is absent or refuses.
  bool connect(const std::string& socketPath, std::string* error = nullptr);
  void close();
  bool connected() const { return fd_ >= 0; }

  /// Writes one already-serialized request line (newline appended).
  bool sendLine(const std::string& line);

  /// Blocks for the next response line (without the newline); false on
  /// EOF or error.
  bool recvLine(std::string* line);

  /// Request/response round trip: serialize, send, read one line, parse.
  /// Null (with `error`) on transport failure or unparseable response —
  /// protocol-level errors ({"ok": false, ...}) still parse and return.
  JsonValuePtr call(const Request& request, std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::string pending_;  ///< bytes read past the last returned line
};

}  // namespace spmd::service
