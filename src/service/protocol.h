// Wire protocol for spmdopt --serve: newline-delimited JSON documents
// over a Unix-domain stream socket.
//
// Each request is one JSON object on one line; each response is one
// compact JSON object on one line (JsonWriter compact mode — embedded
// newlines would split the frame).  Responses carry the request's "id"
// so clients may pipeline: with several requests in flight on one
// connection, responses can arrive out of order.
//
// Request:
//   {"op": "compile" | "run" | "ping" | "stats" | "shutdown",
//    "id": 7,                      // echoed back, default 0
//    "source": "PROGRAM ...",      // compile/run
//    "name": "heat.f",             // diagnostics label, optional
//    "options": {                  // optional, all fields optional
//      "mode": "optimize" | "barriers",
//      "counters": true,
//      "physical_barriers": 0, "physical_counters": 0},
//    "emit": false,                // compile: include lowered listing
//    "threads": 4,                 // run
//    "engine": "lowered" | "interpreted" | "native",   // run
//    "symbols": {"N": 64, "T": 8}} // run
//
// Response (compile, ok):
//   {"ok": true, "id": 7, "op": "compile",
//    "stats": {"regions": R, "boundaries": B, "eliminated": E,
//              "counters": C, "barriers": K},
//    "physical_feasible": true,    // only when physical bounds given
//    "stages_adopted": S,          // pipeline stages served by the cache
//    "latency_us": 1234,
//    "listing": "..."}             // only with "emit": true
//
// Response (run, ok) adds:
//   {"max_diff_opt": 0.0, "opt_sync": {"barriers": ..., "posts": ...,
//    "waits": ...}, "threads": 4}
//
// Response (error):
//   {"ok": false, "id": 7, "error": {"kind": "...", "message": "..."}}
// with kinds: "bad-request" (malformed JSON / unknown op), "parse-error",
// "validate-error", "physical-infeasible", "overloaded" (admission
// control rejected the request), "internal".
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "driver/compilation.h"

namespace spmd::service {

struct Request {
  enum class Op { Ping, Compile, Run, Stats, Shutdown };

  Op op = Op::Ping;
  std::int64_t id = 0;
  std::string source;
  std::string name = "<service>";
  bool emitListing = false;

  // options
  bool barriersOnly = false;
  bool enableCounters = true;
  int physicalBarriers = 0;
  int physicalCounters = 0;

  // run
  int threads = 4;
  std::string engine = "lowered";
  std::vector<std::pair<std::string, std::int64_t>> symbols;
};

const char* opName(Request::Op op);

/// Parses one request line.  False on malformed JSON or an unknown op,
/// with a one-line reason in `error`; field-level junk (negative
/// threads, unknown engine) is also rejected here so workers only see
/// well-formed requests.
bool parseRequest(const std::string& line, Request* request,
                  std::string* error);

/// Serializes a request as one compact line (no trailing newline) —
/// the client half of the protocol.
std::string serializeRequest(const Request& request);

/// The pipeline options a request's option fields denote.
driver::PipelineOptions pipelineOptions(const Request& request);

}  // namespace spmd::service
