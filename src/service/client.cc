#include "service/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace spmd::service {

Client::~Client() { close(); }

bool Client::connect(const std::string& socketPath, std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    close();
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path))
    return fail("socket path empty or too long: \"" + socketPath + "\"");
  std::strncpy(addr.sun_path, socketPath.c_str(), sizeof(addr.sun_path) - 1);

  close();
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return fail("socket: " + std::string(strerror(errno)));
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0)
    return fail("connect " + socketPath + ": " +
                std::string(strerror(errno)));
  return true;
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  pending_.clear();
}

bool Client::sendLine(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(fd_, framed.data() + sent, framed.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

bool Client::recvLine(std::string* line) {
  if (fd_ < 0) return false;
  for (;;) {
    const std::size_t newline = pending_.find('\n');
    if (newline != std::string::npos) {
      *line = pending_.substr(0, newline);
      pending_.erase(0, newline + 1);
      return true;
    }
    char buf[4096];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got <= 0) return false;
    pending_.append(buf, static_cast<std::size_t>(got));
  }
}

JsonValuePtr Client::call(const Request& request, std::string* error) {
  auto fail = [&](const std::string& message) -> JsonValuePtr {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (!sendLine(serializeRequest(request)))
    return fail("send failed (server gone?)");
  std::string line;
  if (!recvLine(&line)) return fail("connection closed before response");
  std::string parseError;
  JsonValuePtr doc = parseJson(line, &parseError);
  if (doc == nullptr) return fail("unparseable response: " + parseError);
  return doc;
}

}  // namespace spmd::service
