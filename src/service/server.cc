#include "service/server.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>

#include "codegen/spmd_executor.h"
#include "driver/execution.h"
#include "obs/stats.h"
#include "support/json.h"

SPMD_STATISTIC(statServeRequests, "service", "requests",
               "requests answered by a worker");
SPMD_STATISTIC(statServeOverloads, "service", "overloads",
               "requests rejected by admission control");
SPMD_STATISTIC(statServeInvalid, "service", "invalid-requests",
               "malformed requests answered with bad-request");

namespace spmd::service {

namespace {

std::int64_t microsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - start)
      .count();
}

std::string errorResponse(std::int64_t id, const char* op,
                          const std::string& kind,
                          const std::string& message) {
  std::ostringstream os;
  JsonWriter json(os, /*compact=*/true);
  json.object();
  json.field("ok", false);
  json.field("id", id);
  json.field("op", op);
  json.field("error").object();
  json.field("kind", kind);
  json.field("message", message);
  json.close();
  json.close();
  return os.str();
}

/// Concatenates collected diagnostics into one message line.
std::string renderDiags(const CollectingDiagnosticSink& sink) {
  std::string out;
  for (const Diagnostic& d : sink.all()) {
    if (!out.empty()) out += "; ";
    out += formatDiagnostic(d);
  }
  return out.empty() ? "no diagnostics" : out;
}

}  // namespace

Server::Server(ServerOptions options) : options_(std::move(options)) {
  if (options_.workers < 1) options_.workers = 1;
  if (options_.queueCapacity == 0) options_.queueCapacity = 1;
  cache_ = options_.cache != nullptr ? options_.cache
                                     : &driver::ArtifactCache::process();
}

Server::~Server() { stop(); }

bool Server::start(std::string* error) {
  auto fail = [&](const std::string& message) {
    if (error != nullptr) *error = message;
    if (listenFd_ >= 0) {
      ::close(listenFd_);
      listenFd_ = -1;
    }
    return false;
  };

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socketPath.empty() ||
      options_.socketPath.size() >= sizeof(addr.sun_path))
    return fail("socket path empty or too long: \"" + options_.socketPath +
                "\"");
  std::strncpy(addr.sun_path, options_.socketPath.c_str(),
               sizeof(addr.sun_path) - 1);

  listenFd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listenFd_ < 0) return fail("socket: " + std::string(strerror(errno)));
  ::unlink(options_.socketPath.c_str());
  if (::bind(listenFd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0)
    return fail("bind " + options_.socketPath + ": " +
                std::string(strerror(errno)));
  if (::listen(listenFd_, 128) != 0)
    return fail("listen: " + std::string(strerror(errno)));

  stopping_.store(false);
  running_.store(true);
  team_ = std::make_unique<rt::ThreadTeam>(options_.workers);
  pumpThread_ = std::thread([this] {
    // ThreadTeam::run blocks its caller (the master runs as worker 0), so
    // the broadcast lives on this dedicated pump thread for the server's
    // whole lifetime.
    team_->run([this](int) { workerLoop(); });
  });
  acceptThread_ = std::thread([this] { acceptLoop(); });
  return true;
}

void Server::wait() {
  std::unique_lock<std::mutex> lock(waitMutex_);
  waitCv_.wait(lock, [this] {
    return stopping_.load() || shutdownRequested_.load();
  });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    for (const std::shared_ptr<Connection>& conn : connections_) {
      std::lock_guard<std::mutex> writeLock(conn->writeMutex);
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  queueCv_.notify_all();

  if (acceptThread_.joinable()) acceptThread_.join();
  // No new readers can appear now (accept loop is gone).
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    readers.swap(readers_);
  }
  for (std::thread& reader : readers)
    if (reader.joinable()) reader.join();
  queueCv_.notify_all();
  if (pumpThread_.joinable()) pumpThread_.join();
  team_.reset();
  {
    std::lock_guard<std::mutex> lock(connMutex_);
    connections_.clear();
  }

  ::unlink(options_.socketPath.c_str());
  waitCv_.notify_all();
}

Server::Stats Server::stats() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

void Server::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR && !stopping_.load()) continue;
      return;  // listener closed (stop) or fatal
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(connMutex_);
      connections_.push_back(conn);
      readers_.emplace_back([this, conn] { readerLoop(conn); });
    }
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.accepted;
    }
  }
}

void Server::readerLoop(std::shared_ptr<Connection> conn) {
  std::string pending;
  char buf[4096];
  for (;;) {
    const ssize_t got = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (got <= 0) break;  // EOF, reset, or shutdown()
    pending.append(buf, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (line.empty()) continue;
      if (stopping_.load()) return;
      Job job{conn, std::move(line), std::chrono::steady_clock::now()};
      bool admitted = false;
      {
        std::lock_guard<std::mutex> lock(queueMutex_);
        if (queue_.size() < options_.queueCapacity) {
          queue_.push_back(std::move(job));
          admitted = true;
        }
      }
      if (admitted) {
        queueCv_.notify_one();
      } else {
        // Admission control: reject from the reader so a saturated
        // worker pool never blocks the socket.  The id is unknown
        // without parsing; overload rejects always carry id 0.
        {
          std::lock_guard<std::mutex> lock(statsMutex_);
          ++stats_.overloaded;
        }
        statServeOverloads.add();
        send(*conn, errorResponse(0, "unknown", "overloaded",
                                  "request queue full (" +
                                      std::to_string(options_.queueCapacity) +
                                      " pending); retry later"));
      }
    }
  }
  std::lock_guard<std::mutex> writeLock(conn->writeMutex);
  if (conn->fd >= 0) {
    ::close(conn->fd);
    conn->fd = -1;
  }
}

void Server::workerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queueMutex_);
      queueCv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    process(job);
  }
}

void Server::process(const Job& job) {
  Request request;
  std::string parseError;
  std::string response;
  if (!parseRequest(job.line, &request, &parseError)) {
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.invalid;
    }
    statServeInvalid.add();
    response = errorResponse(0, "unknown", "bad-request", parseError);
  } else {
    try {
      response = handle(request, job.arrival);
    } catch (const std::exception& e) {
      response = errorResponse(request.id, opName(request.op), "internal",
                               e.what());
    }
    {
      std::lock_guard<std::mutex> lock(statsMutex_);
      ++stats_.served;
    }
    statServeRequests.add();
  }
  send(*job.conn, response);
}

std::string Server::handle(const Request& request,
                           std::chrono::steady_clock::time_point arrival) {
  switch (request.op) {
    case Request::Op::Compile:
      return handleCompile(request, /*run=*/false, arrival);
    case Request::Op::Run:
      return handleCompile(request, /*run=*/true, arrival);
    case Request::Op::Ping: {
      std::ostringstream os;
      JsonWriter json(os, /*compact=*/true);
      json.object();
      json.field("ok", true);
      json.field("id", request.id);
      json.field("op", "ping");
      json.field("version", driver::versionString());
      json.field("latency_us", microsSince(arrival));
      json.close();
      return os.str();
    }
    case Request::Op::Stats: {
      const driver::ArtifactCache::Counters cache = cache_->counters();
      const Stats server = stats();
      std::ostringstream os;
      JsonWriter json(os, /*compact=*/true);
      json.object();
      json.field("ok", true);
      json.field("id", request.id);
      json.field("op", "stats");
      json.field("cache").object();
      json.field("hits", cache.hits);
      json.field("misses", cache.misses);
      json.field("publishes", cache.publishes);
      json.field("extensions", cache.extensions);
      json.field("rejects", cache.rejects);
      json.field("evictions", cache.evictions);
      json.field("entries", cache.entries);
      json.close();
      json.field("server").object();
      json.field("accepted", server.accepted);
      json.field("served", server.served);
      json.field("overloaded", server.overloaded);
      json.field("invalid", server.invalid);
      json.close();
      json.field("latency_us", microsSince(arrival));
      json.close();
      return os.str();
    }
    case Request::Op::Shutdown: {
      shutdownRequested_.store(true);
      waitCv_.notify_all();
      std::ostringstream os;
      JsonWriter json(os, /*compact=*/true);
      json.object();
      json.field("ok", true);
      json.field("id", request.id);
      json.field("op", "shutdown");
      json.field("latency_us", microsSince(arrival));
      json.close();
      return os.str();
    }
  }
  return errorResponse(request.id, "unknown", "internal", "unhandled op");
}

std::string Server::handleCompile(
    const Request& request, bool run,
    std::chrono::steady_clock::time_point arrival) {
  const char* op = run ? "run" : "compile";
  CollectingDiagnosticSink sink;
  driver::Compilation session =
      driver::Compilation::fromSource(request.source, request.name);
  session.diags().setSink(&sink);
  session.setOptions(pipelineOptions(request));
  session.attachArtifactCache(cache_);

  if (!session.parseOk())
    return errorResponse(request.id, op, "parse-error", renderDiags(sink));
  if (!session.validateOk())
    return errorResponse(request.id, op, "validate-error", renderDiags(sink));

  const driver::SyncPlan& plan = session.syncPlan();
  const bool physicalRequested = session.options().physical.enabled();
  if (physicalRequested && !session.physicalSync().feasible())
    return errorResponse(request.id, op, "physical-infeasible",
                         renderDiags(sink));

  double maxDiffOpt = 0.0;
  rt::SyncCounts optCounts;
  if (run) {
    driver::RunRequest rr;
    rr.symbols = driver::bindSymbols(session.program(), request.symbols);
    rr.threads = request.threads;
    rr.runBase = false;
    rr.runOptimized = true;
    rr.reference = true;  // every run is checked against sequential
    if (auto engine = cg::parseEngineKind(request.engine))
      rr.exec.engine = *engine;
    const driver::RunComparison result = driver::runComparison(session, rr);
    maxDiffOpt = result.maxDiffOpt;
    optCounts = result.optCounts;
  }

  std::ostringstream os;
  JsonWriter json(os, /*compact=*/true);
  json.object();
  json.field("ok", true);
  json.field("id", request.id);
  json.field("op", op);
  json.field("stats").object();
  json.field("regions", static_cast<std::uint64_t>(plan.stats.regions));
  json.field("boundaries", static_cast<std::uint64_t>(plan.stats.boundaries));
  json.field("eliminated", static_cast<std::uint64_t>(plan.stats.eliminated));
  json.field("counters", static_cast<std::uint64_t>(plan.stats.counters));
  json.field("barriers", static_cast<std::uint64_t>(plan.stats.barriers));
  json.close();
  if (physicalRequested) json.field("physical_feasible", true);
  json.field("stages_adopted", session.stagesAdopted());
  if (request.emitListing) json.field("listing", session.lowered().listing);
  if (run) {
    json.field("threads", request.threads);
    json.field("max_diff_opt", maxDiffOpt);
    json.field("opt_sync").object();
    json.field("barriers", optCounts.barriers);
    json.field("broadcasts", optCounts.broadcasts);
    json.field("posts", optCounts.counterPosts);
    json.field("waits", optCounts.counterWaits);
    json.close();
  }
  json.field("latency_us", microsSince(arrival));
  json.close();
  return os.str();
}

void Server::send(Connection& conn, const std::string& line) {
  std::lock_guard<std::mutex> lock(conn.writeMutex);
  if (conn.fd < 0) return;  // peer already gone
  std::string framed = line;
  framed.push_back('\n');
  std::size_t sent = 0;
  while (sent < framed.size()) {
    const ssize_t n = ::send(conn.fd, framed.data() + sent,
                             framed.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer closed; response is undeliverable
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace spmd::service
