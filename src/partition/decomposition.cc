#include "partition/decomposition.h"

namespace spmd::part {

using poly::LinExpr;
using poly::System;
using poly::VarId;
using poly::VarKind;

const char* distKindName(DistKind kind) {
  switch (kind) {
    case DistKind::Replicated:
      return "replicated";
    case DistKind::Block:
      return "block";
    case DistKind::Cyclic:
      return "cyclic";
    case DistKind::BlockCyclic:
      return "block-cyclic";
  }
  SPMD_UNREACHABLE("bad DistKind");
}

Decomposition::Decomposition(ir::Program& prog) : prog_(&prog) {
  pVar_ = prog.space()->add("P", VarKind::Symbolic);
  bVar_ = prog.space()->add("B", VarKind::Symbolic);
  dists_.resize(prog.arrays().size());
}

void Decomposition::distribute(ir::ArrayId a, int dim, DistKind kind,
                               i64 alignOffset, i64 blockParam) {
  if (static_cast<std::size_t>(a.index) >= dists_.size())
    dists_.resize(prog_->arrays().size());
  SPMD_CHECK(dim >= 0 && static_cast<std::size_t>(dim) <
                             prog_->array(a).extents.size(),
             "distributed dimension out of range for " + prog_->array(a).name);
  SPMD_CHECK(kind != DistKind::BlockCyclic || blockParam >= 1,
             "block-cyclic distribution needs a positive block size");
  dists_[static_cast<std::size_t>(a.index)] =
      ArrayDist{dim, kind, alignOffset, blockParam};
  if (!templateExtent_ && kind != DistKind::Replicated)
    templateExtent_ = prog_->array(a).extents[static_cast<std::size_t>(dim)];
}

const ArrayDist& Decomposition::dist(ir::ArrayId a) const {
  SPMD_CHECK(static_cast<std::size_t>(a.index) < dists_.size(),
             "array has no distribution record");
  return dists_[static_cast<std::size_t>(a.index)];
}

void Decomposition::setLoopPartition(const ir::Stmt* loop,
                                     LoopPartition part) {
  loopParts_[loop] = part;
}

std::optional<LoopPartition> Decomposition::loopPartition(
    const ir::Stmt* loop) const {
  auto it = loopParts_.find(loop);
  if (it == loopParts_.end()) return std::nullopt;
  return it->second;
}

VarId Decomposition::makeProcVar(System& sys, const std::string& name) const {
  // The variable is minted in the *query's* VarSpace (usually a clone of
  // the program space, see DepQueryBuilder): parallel analysis threads
  // must never append to the shared program space.
  VarId p = sys.space()->add(name, VarKind::Processor);
  // 0 <= p <= P - 1
  sys.addGE(LinExpr::var(p));
  sys.addGE(LinExpr::var(pVar_) - LinExpr::var(p) - LinExpr::constant(1));
  return p;
}

std::string Decomposition::offsetKey(VarId procVar) {
  return "o#" + std::to_string(procVar.index);
}

VarId Decomposition::offsetVar(System& sys, VarId procVar) const {
  // The cache travels with the System (and its copies, e.g. the branch
  // systems of a communication query), not with the Decomposition: offset
  // variables for one query's processor vars are meaningless in another
  // query's system, and a per-Decomposition map would race under parallel
  // analysis.
  std::string key = offsetKey(procVar);
  if (auto cached = sys.findAux(key)) return *cached;
  VarId o = sys.space()->add("o_" + sys.space()->name(procVar),
                             VarKind::Processor);
  sys.registerAux(key, o);
  // o_p = p*B with p >= 0, B >= 1  =>  o_p >= 0 and o_p >= p (since B >= 1).
  sys.addGE(LinExpr::var(o));
  sys.addGE(LinExpr::var(o) - LinExpr::var(procVar));
  return o;
}

bool Decomposition::addOwnerConstraint(System& sys, ir::ArrayId a,
                                       const LinExpr& subscript,
                                       VarId procVar) const {
  const ArrayDist& d = dist(a);
  switch (d.kind) {
    case DistKind::Replicated:
      // Every processor has the element; ownership imposes nothing, and
      // writes to replicated arrays are not meaningful in this model.
      return true;
    case DistKind::Block: {
      VarId o = offsetVar(sys, procVar);
      LinExpr cell = subscript - LinExpr::constant(d.alignOffset);
      // o_p <= cell <= o_p + B - 1
      sys.addGE(cell - LinExpr::var(o));
      sys.addGE(LinExpr::var(o) + LinExpr::var(bVar_) -
                LinExpr::constant(1) - cell);
      return true;
    }
    case DistKind::Cyclic:
    case DistKind::BlockCyclic:
      // (cell mod P == p) and (floor(cell/b) mod P == p) are not linear
      // with symbolic P; the analysis must assume general communication.
      return false;
  }
  SPMD_UNREACHABLE("bad DistKind");
}

bool Decomposition::addComputeConstraint(System& sys, const ir::Stmt* loop,
                                         const LinExpr& loopIndexExpr,
                                         const LinExpr& lowerBound,
                                         const LinExpr& lhsSub,
                                         ir::ArrayId lhsArray,
                                         VarId procVar) const {
  LoopPartition part =
      loopPartition(loop).value_or(LoopPartition{});  // owner-computes
  switch (part.kind) {
    case LoopPartition::Kind::OwnerComputes: {
      ir::ArrayId target = part.array.valid() ? part.array : lhsArray;
      if (!target.valid()) return false;
      return addOwnerConstraint(sys, target, lhsSub, procVar);
    }
    case LoopPartition::Kind::BlockRange: {
      // Iterations block-distributed and aligned to the decomposition
      // template origin (like an HPF ALIGN): iteration i behaves as the
      // owner of template cell i, so block-range loops co-locate with
      // block-distributed arrays indexed by the loop variable.  Requires a
      // non-negative index range.
      (void)lowerBound;
      VarId o = offsetVar(sys, procVar);
      const LinExpr& cell = loopIndexExpr;
      sys.addGE(cell - LinExpr::var(o));
      sys.addGE(LinExpr::var(o) + LinExpr::var(bVar_) -
                LinExpr::constant(1) - cell);
      return true;
    }
    case LoopPartition::Kind::CyclicRange:
      return false;
  }
  SPMD_UNREACHABLE("bad LoopPartition kind");
}

void Decomposition::addOffsetRelation(System& sys, VarId p, VarId q, i64 d,
                                      bool exact) const {
  if (p == q) return;
  auto oP = sys.findAux(offsetKey(p));
  auto oQ = sys.findAux(offsetKey(q));
  if (!oP || !oQ) return;  // no block ownership was asserted for one side
  LinExpr diff = LinExpr::var(*oQ) - LinExpr::var(*oP);
  // q - p == d   =>  o_q - o_p == d*B
  // q - p >= d   =>  o_q - o_p >= d*B   (d > 0)
  // q - p <= d   =>  o_q - o_p <= d*B   (d < 0)
  LinExpr rhs = LinExpr::var(bVar_) * d;
  if (exact)
    sys.addEquals(diff, rhs);
  else if (d > 0)
    sys.addGE(diff - rhs);
  else
    sys.addGE(rhs - diff);
}

System Decomposition::baseContext(i64 minProcs) const {
  System sys = prog_->symbolicContext();
  sys.addGE(LinExpr::var(pVar_) - LinExpr::constant(minProcs));
  sys.addGE(LinExpr::var(bVar_) - LinExpr::constant(1));
  return sys;
}

i64 Decomposition::concreteBlockSize(const ir::SymbolBindings& symbols,
                                     i64 nprocs) const {
  SPMD_CHECK(templateExtent_.has_value(),
             "decomposition has no distributed array");
  i64 extent = templateExtent_->evaluate([&](VarId v) {
    auto it = symbols.find(v.index);
    SPMD_CHECK(it != symbols.end(), "template extent uses unbound symbolic");
    return it->second;
  });
  SPMD_CHECK(extent >= 1, "non-positive template extent");
  return ceilDiv(extent, nprocs);
}

i64 Decomposition::concreteOwner(ir::ArrayId a, i64 subscript, i64 nprocs,
                                 const ir::SymbolBindings& symbols) const {
  const ArrayDist& d = dist(a);
  i64 cell = subscript - d.alignOffset;
  switch (d.kind) {
    case DistKind::Replicated:
      return 0;
    case DistKind::Block: {
      i64 block = concreteBlockSize(symbols, nprocs);
      i64 owner = floorDiv(cell, block);
      return std::max<i64>(0, std::min(owner, nprocs - 1));
    }
    case DistKind::Cyclic: {
      i64 owner = cell % nprocs;
      return owner < 0 ? owner + nprocs : owner;
    }
    case DistKind::BlockCyclic: {
      i64 owner = floorDiv(cell, d.blockParam) % nprocs;
      return owner < 0 ? owner + nprocs : owner;
    }
  }
  SPMD_UNREACHABLE("bad DistKind");
}

}  // namespace spmd::part
