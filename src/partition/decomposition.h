// Data decompositions and compile-time computation partitions.
//
// The paper assumes "the compiler partitions computation using global
// automatic data decomposition techniques" (§2): arrays are distributed
// across a one-dimensional processor space and parallel-loop iterations are
// assigned by the owner-computes rule [18].  Both the data mapping and the
// derived computation partition are expressed as systems of symbolic linear
// inequalities so that communication analysis can conjoin them with access
// equations and scan the result with Fourier–Motzkin elimination.
//
// Linearization of BLOCK ownership.  Block ownership of element x by
// processor p is  p*B <= x < (p+1)*B  with B the (symbolic) block size —
// a bilinear constraint.  We linearize with the standard offset-variable
// trick: each (processor var, template) pair gets an offset variable
// o_p ("p*B"), ownership becomes the linear  o_p <= x <= o_p + B - 1,
// and the communication tester adds the exact consequences of the branch
// under test:
//     q == p      ->  same offset variable is reused
//     q == p + d  ->  o_q == o_p + d*B          (d a small constant)
//     q >= p + d  ->  o_q >= o_p + d*B
// plus o_p >= 0.  Every added constraint is implied by o_p = p*B, so each
// branch system is a *relaxation* of reality: proving it infeasible proves
// the real system infeasible, which is the only direction barrier
// elimination needs.
//
// CYCLIC ownership (x mod P == p) is supported when the analysis runs with
// a concrete processor count; with symbolic P the tester conservatively
// reports general communication.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "ir/eval.h"
#include "ir/program.h"
#include "poly/system.h"

namespace spmd::part {

enum class DistKind {
  Replicated,   ///< dimension not distributed (every processor sees all)
  Block,        ///< contiguous blocks of size B = ceil(extent / P)
  Cyclic,       ///< element x owned by processor x mod P
  BlockCyclic,  ///< blocks of a fixed size b dealt round-robin:
                ///< owner(x) = floor(x / b) mod P
};

const char* distKindName(DistKind kind);

/// Distribution of one array: at most one distributed dimension (1-D
/// processor space, as in the paper's experiments).
struct ArrayDist {
  int dim = -1;                       ///< distributed dimension, -1 = fully replicated
  DistKind kind = DistKind::Replicated;
  i64 alignOffset = 0;                ///< template cell = subscript - alignOffset
  i64 blockParam = 1;                 ///< BlockCyclic only: the block size b
};

/// How a parallel loop's iterations are assigned to processors.
struct LoopPartition {
  enum class Kind {
    OwnerComputes,  ///< iteration i runs on the owner of lhsArray(f(i))
    BlockRange,     ///< iterations block-distributed over [lb, ub]
    CyclicRange,    ///< iteration i on processor (i - lb) mod P
  };
  Kind kind = Kind::OwnerComputes;
  // For OwnerComputes: the array and the subscript position whose owner
  // runs the iteration (subscript expression comes from the loop body).
  ir::ArrayId array;
};

/// The whole-program mapping: per-array distributions plus the symbolic
/// processor-space parameters (P, B, and on-demand offset variables o_p).
class Decomposition {
 public:
  explicit Decomposition(ir::Program& prog);

  ir::Program& program() { return *prog_; }
  const ir::Program& program() const { return *prog_; }

  /// Symbolic processor count P (>= 1) and block size B (>= 1).
  poly::VarId procCountVar() const { return pVar_; }
  poly::VarId blockSizeVar() const { return bVar_; }

  /// Distributes array `a` along `dim` with the given kind and alignment.
  /// `blockParam` is the fixed block size for BlockCyclic distributions.
  void distribute(ir::ArrayId a, int dim, DistKind kind, i64 alignOffset = 0,
                  i64 blockParam = 1);

  const ArrayDist& dist(ir::ArrayId a) const;

  /// Assigns an explicit partition to a parallel loop (defaults to
  /// owner-computes w.r.t. the loop's first LHS array).
  void setLoopPartition(const ir::Stmt* loop, LoopPartition part);
  std::optional<LoopPartition> loopPartition(const ir::Stmt* loop) const;

  // The constraint builders below are const: they mutate only the System
  // (and its VarSpace) passed in, never the Decomposition, so concurrent
  // analysis threads may share one Decomposition as long as each query
  // builds over its own cloned VarSpace (see analysis::DepQueryBuilder).

  /// Creates a fresh processor variable (kind Processor, 0 <= p <= P-1
  /// bounds added to `sys`).
  poly::VarId makeProcVar(poly::System& sys, const std::string& name) const;

  /// Offset variable o_p ("p * B") for a processor var; created on first
  /// use per (processor, system) with o_p >= 0 added to `sys` and cached
  /// in the system's aux registry (copies of `sys` inherit it).
  poly::VarId offsetVar(poly::System& sys, poly::VarId procVar) const;

  /// Adds the constraint "processor `procVar` owns template cell `cell`"
  /// for array `a` (cell = subscript in the distributed dim).  Returns
  /// false when ownership cannot be expressed linearly (symbolic cyclic):
  /// callers must then assume any processor may own the element.
  [[nodiscard]] bool addOwnerConstraint(poly::System& sys, ir::ArrayId a,
                                        const poly::LinExpr& subscript,
                                        poly::VarId procVar) const;

  /// Adds the constraint that iteration `iter` of parallel loop `loop`
  /// (whose LHS subscript in the distributed dim is `lhsSub`, already
  /// expressed in terms of `iter`'s variables) executes on `procVar`.
  /// Returns false when not linearly expressible.
  [[nodiscard]] bool addComputeConstraint(poly::System& sys,
                                          const ir::Stmt* loop,
                                          const poly::LinExpr& loopIndexExpr,
                                          const poly::LinExpr& lowerBound,
                                          const poly::LinExpr& lhsSub,
                                          ir::ArrayId lhsArray,
                                          poly::VarId procVar) const;

  /// Adds the exact branch consequences relating two processors' offset
  /// variables:  q - p == d  =>  o_q - o_p == d*B  (for |d| used by the
  /// communication tester) or  q - p >= d  =>  o_q - o_p >= d*B.
  void addOffsetRelation(poly::System& sys, poly::VarId p, poly::VarId q,
                         i64 d, bool exact) const;

  /// Base constraints every query conjoins: P >= minProcs, B >= 1,
  /// program symbolic lower bounds.
  poly::System baseContext(i64 minProcs = 2) const;

  /// The distribution template: all distributed arrays align to a single
  /// template of this extent, so they share one block size
  /// B = ceil(extent / P).  Defaults to the distributed-dim extent of the
  /// first array passed to distribute().
  void setTemplateExtent(poly::LinExpr extent) {
    templateExtent_ = std::move(extent);
  }
  const std::optional<poly::LinExpr>& templateExtent() const {
    return templateExtent_;
  }

  // --- concrete evaluation (used by the SPMD executor) ---------------------

  /// Block size under concrete symbol values and processor count.
  i64 concreteBlockSize(const ir::SymbolBindings& symbols, i64 nprocs) const;

  /// Owner of `subscript` in array `a`'s distributed dimension under a
  /// concrete configuration (clamped to [0, nprocs-1]).
  i64 concreteOwner(ir::ArrayId a, i64 subscript, i64 nprocs,
                    const ir::SymbolBindings& symbols) const;

 private:
  static std::string offsetKey(poly::VarId procVar);

  ir::Program* prog_;
  poly::VarId pVar_;
  poly::VarId bVar_;
  std::optional<poly::LinExpr> templateExtent_;
  std::vector<ArrayDist> dists_;  // indexed by ArrayId
  std::map<const ir::Stmt*, LoopPartition> loopParts_;
};

}  // namespace spmd::part
