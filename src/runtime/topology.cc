#include "runtime/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>

#include "support/flags.h"

namespace spmd::rt {

std::string Topology::toString() const {
  return std::to_string(packages) + "x" + std::to_string(coresPerPackage);
}

std::optional<Topology> Topology::parse(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos) return std::nullopt;
  auto packages = support::parseIntFlag(text.substr(0, x));
  auto cores = support::parseIntFlag(text.substr(x + 1));
  if (!packages || !cores) return std::nullopt;
  if (*packages < 1 || *cores < 1) return std::nullopt;
  if (*packages > (1 << 20) || *cores > (1 << 20)) return std::nullopt;
  return Topology{*packages, *cores};
}

namespace {

/// Reads one small integer file ("0\n"); nullopt on any failure.
std::optional<int> readIntFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  int value = -1;
  const int got = std::fscanf(f, "%d", &value);
  std::fclose(f);
  if (got != 1 || value < 0) return std::nullopt;
  return value;
}

Topology probe() {
  const unsigned hc = std::thread::hardware_concurrency();
  const int cpus = hc == 0 ? 1 : static_cast<int>(hc);
  // Count distinct physical packages over the online CPUs.  Missing or
  // unreadable sysfs (containers, non-Linux) falls back to one package.
  std::set<int> packages;
  for (int cpu = 0; cpu < cpus; ++cpu) {
    auto id = readIntFile("/sys/devices/system/cpu/cpu" +
                          std::to_string(cpu) +
                          "/topology/physical_package_id");
    if (!id) {
      packages.clear();
      break;
    }
    packages.insert(*id);
  }
  const int npkg = packages.empty() ? 1 : static_cast<int>(packages.size());
  return Topology{npkg, std::max(1, cpus / npkg)};
}

}  // namespace

const Topology& Topology::detected() {
  static const Topology cached = probe();
  return cached;
}

int Topology::clusterSizeFor(int parties) const {
  if (parties <= 1) return 1;
  if (packages > 1 && coresPerPackage < parties)
    return std::max(1, std::min(coresPerPackage, parties));
  const int root =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(parties))));
  return std::max(1, std::min(root, parties));
}

}  // namespace spmd::rt
