#include "runtime/topology.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>
#include <thread>

#include "support/flags.h"

namespace spmd::rt {

std::string Topology::toString() const {
  return std::to_string(packages) + "x" + std::to_string(coresPerPackage);
}

std::optional<Topology> Topology::parse(const std::string& text) {
  const std::size_t x = text.find('x');
  if (x == std::string::npos) return std::nullopt;
  auto packages = support::parseIntFlag(text.substr(0, x));
  auto cores = support::parseIntFlag(text.substr(x + 1));
  if (!packages || !cores) return std::nullopt;
  if (*packages < 1 || *cores < 1) return std::nullopt;
  if (*packages > (1 << 20) || *cores > (1 << 20)) return std::nullopt;
  return Topology{*packages, *cores};
}

namespace {

/// Reads one small integer file ("0\n"); nullopt on any failure.
std::optional<int> readIntFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return std::nullopt;
  int value = -1;
  const int got = std::fscanf(f, "%d", &value);
  std::fclose(f);
  if (got != 1 || value < 0) return std::nullopt;
  return value;
}

/// Cached probe outcome: topology plus the (possibly empty) degradation
/// note, computed exactly once for the process.
struct DetectedState {
  Topology topology;
  std::string note;
};

const DetectedState& detectedState() {
  static const DetectedState cached = [] {
    const unsigned hc = std::thread::hardware_concurrency();
    const int cpus = hc == 0 ? 1 : static_cast<int>(hc);
    DetectedState state;
    state.topology =
        Topology::probeFrom("/sys/devices/system/cpu", cpus, &state.note);
    return state;
  }();
  return cached;
}

}  // namespace

Topology Topology::probeFrom(const std::string& sysfsRoot, int cpus,
                             std::string* note) {
  if (note != nullptr) note->clear();
  cpus = std::max(1, cpus);
  // Count distinct physical packages over the online CPUs.  Missing or
  // partially readable sysfs (containers, non-Linux, offline CPU holes)
  // degrades to one flat package — recorded once in `note`, never warned
  // about per thread.
  std::set<int> packages;
  bool complete = true;
  for (int cpu = 0; cpu < cpus; ++cpu) {
    auto id = readIntFile(sysfsRoot + "/cpu" + std::to_string(cpu) +
                          "/topology/physical_package_id");
    if (!id) {
      complete = false;
      break;
    }
    packages.insert(*id);
  }
  if (!complete || packages.empty()) {
    if (note != nullptr)
      *note = "cpu topology unavailable under " + sysfsRoot +
              "; assuming flat 1x" + std::to_string(cpus);
    return Topology{1, cpus};
  }
  // Ceil division: totalCores() must cover every CPU even when packages
  // are uneven (7 CPUs over 2 packages is 2x4; floor would drop a core).
  const int npkg = static_cast<int>(packages.size());
  return Topology{npkg, (cpus + npkg - 1) / npkg};
}

const Topology& Topology::detected() { return detectedState().topology; }

const std::string& Topology::detectionNote() { return detectedState().note; }

int Topology::clusterSizeFor(int parties) const {
  if (parties <= 1) return 1;
  if (packages > 1 && coresPerPackage < parties)
    return std::max(1, std::min(coresPerPackage, parties));
  const int root =
      static_cast<int>(std::ceil(std::sqrt(static_cast<double>(parties))));
  return std::max(1, std::min(root, parties));
}

}  // namespace spmd::rt
