#include "runtime/sync_primitive.h"

#include "runtime/barrier.h"
#include "runtime/counter.h"

namespace spmd::rt {

const char* syncKindName(SyncPrimitive::Kind kind) {
  switch (kind) {
    case SyncPrimitive::Kind::Barrier:
      return "barrier";
    case SyncPrimitive::Kind::Counter:
      return "counter";
  }
  return "?";
}

const char* barrierAlgorithmName(BarrierAlgorithm algorithm) {
  switch (algorithm) {
    case BarrierAlgorithm::Central:
      return "central";
    case BarrierAlgorithm::Tree:
      return "tree";
  }
  return "?";
}

const char* spinPolicyName(SpinPolicy policy) {
  switch (policy) {
    case SpinPolicy::Pause:
      return "pause";
    case SpinPolicy::Backoff:
      return "backoff";
    case SpinPolicy::Yield:
      return "yield";
  }
  return "?";
}

std::optional<SpinPolicy> parseSpinPolicy(const std::string& text) {
  if (text == "pause") return SpinPolicy::Pause;
  if (text == "backoff") return SpinPolicy::Backoff;
  if (text == "yield") return SpinPolicy::Yield;
  return std::nullopt;
}

std::unique_ptr<Barrier> makeBarrier(int parties,
                                     const SyncPrimitiveOptions& options) {
  std::unique_ptr<Barrier> barrier;
  switch (options.barrierAlgorithm) {
    case BarrierAlgorithm::Central:
      barrier = std::make_unique<CentralBarrier>(parties, options.spinPolicy);
      break;
    case BarrierAlgorithm::Tree:
      barrier = std::make_unique<TreeBarrier>(parties, options.spinPolicy);
      break;
  }
  SPMD_CHECK(barrier != nullptr, "bad BarrierAlgorithm");
  barrier->setTrace(options.tracer, options.traceSite);
  return barrier;
}

std::unique_ptr<SyncPrimitive> makeSyncPrimitive(
    SyncPrimitive::Kind kind, int parties,
    const SyncPrimitiveOptions& options) {
  switch (kind) {
    case SyncPrimitive::Kind::Barrier:
      return makeBarrier(parties, options);
    case SyncPrimitive::Kind::Counter: {
      auto counter = std::make_unique<CounterSync>(parties, options.spinPolicy);
      counter->setTrace(options.tracer, options.traceSite);
      return counter;
    }
  }
  SPMD_UNREACHABLE("bad SyncPrimitive::Kind");
}

Barrier& asBarrier(SyncPrimitive& primitive) {
  SPMD_ASSERT(primitive.kind() == SyncPrimitive::Kind::Barrier,
              "expected a barrier primitive, got " + primitive.name());
  return static_cast<Barrier&>(primitive);
}

CounterSync& asCounter(SyncPrimitive& primitive) {
  SPMD_ASSERT(primitive.kind() == SyncPrimitive::Kind::Counter,
              "expected a counter primitive, got " + primitive.name());
  return static_cast<CounterSync&>(primitive);
}

}  // namespace spmd::rt
