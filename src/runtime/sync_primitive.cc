#include "runtime/sync_primitive.h"

#include <thread>

#include "runtime/barrier.h"
#include "runtime/counter.h"
#include "support/flags.h"

namespace spmd::rt {

const char* syncKindName(SyncPrimitive::Kind kind) {
  switch (kind) {
    case SyncPrimitive::Kind::Barrier:
      return "barrier";
    case SyncPrimitive::Kind::Counter:
      return "counter";
  }
  return "?";
}

const char* barrierAlgorithmName(BarrierAlgorithm algorithm) {
  switch (algorithm) {
    case BarrierAlgorithm::Central:
      return "central";
    case BarrierAlgorithm::Tree:
      return "tree";
    case BarrierAlgorithm::Hier:
      return "hier";
  }
  return "?";
}

std::optional<BarrierAlgorithm> parseBarrierAlgorithm(
    const std::string& text) {
  static constexpr support::EnumFlagValue<BarrierAlgorithm> kTable[] = {
      {"central", BarrierAlgorithm::Central},
      {"tree", BarrierAlgorithm::Tree},
      {"hier", BarrierAlgorithm::Hier},
  };
  return support::parseEnumFlag(text, kTable);
}

const char* spinPolicyName(SpinPolicy policy) {
  switch (policy) {
    case SpinPolicy::Pause:
      return "pause";
    case SpinPolicy::Backoff:
      return "backoff";
    case SpinPolicy::Yield:
      return "yield";
  }
  return "?";
}

std::optional<SpinPolicy> parseSpinPolicy(const std::string& text) {
  static constexpr support::EnumFlagValue<SpinPolicy> kTable[] = {
      {"pause", SpinPolicy::Pause},
      {"backoff", SpinPolicy::Backoff},
      {"yield", SpinPolicy::Yield},
  };
  return support::parseEnumFlag(text, kTable);
}

bool spinPolicyDowngraded(const SyncPrimitiveOptions& options, int parties) {
  if (options.spinPolicyExplicit) return false;
  if (options.spinPolicy == SpinPolicy::Yield) return false;
  const unsigned hc = std::thread::hardware_concurrency();
  // 0 means "unknown": never downgrade on a guess.
  return hc != 0 && static_cast<unsigned>(parties) > hc;
}

SpinPolicy effectiveSpinPolicy(const SyncPrimitiveOptions& options,
                               int parties) {
  return spinPolicyDowngraded(options, parties) ? SpinPolicy::Yield
                                                : options.spinPolicy;
}

namespace {

/// Cluster fan-out for the Hier family: the requested topology, or the
/// probed machine when unspecified.
int clusterSizeFor(const SyncPrimitiveOptions& options, int parties) {
  const Topology& topo =
      options.topology.specified() ? options.topology : Topology::detected();
  return topo.clusterSizeFor(parties);
}

}  // namespace

std::unique_ptr<Barrier> makeBarrier(int parties,
                                     const SyncPrimitiveOptions& options) {
  const SpinPolicy spin = effectiveSpinPolicy(options, parties);
  std::unique_ptr<Barrier> barrier;
  switch (options.barrierAlgorithm) {
    case BarrierAlgorithm::Central:
      barrier = std::make_unique<CentralBarrier>(parties, spin);
      break;
    case BarrierAlgorithm::Tree:
      barrier = std::make_unique<TreeBarrier>(parties, spin);
      break;
    case BarrierAlgorithm::Hier:
      barrier = std::make_unique<HierarchicalBarrier>(
          parties, clusterSizeFor(options, parties), spin);
      break;
  }
  SPMD_CHECK(barrier != nullptr, "bad BarrierAlgorithm");
  barrier->setTrace(options.tracer, options.traceSite);
  return barrier;
}

std::unique_ptr<SyncPrimitive> makeSyncPrimitive(
    SyncPrimitive::Kind kind, int parties,
    const SyncPrimitiveOptions& options) {
  switch (kind) {
    case SyncPrimitive::Kind::Barrier:
      return makeBarrier(parties, options);
    case SyncPrimitive::Kind::Counter: {
      const SpinPolicy spin = effectiveSpinPolicy(options, parties);
      std::unique_ptr<CounterSync> counter;
      if (options.barrierAlgorithm == BarrierAlgorithm::Hier)
        counter = std::make_unique<ClusteredCounterSync>(
            parties, clusterSizeFor(options, parties), spin);
      else
        counter = std::make_unique<CounterSync>(parties, spin);
      counter->setTrace(options.tracer, options.traceSite);
      return counter;
    }
  }
  SPMD_UNREACHABLE("bad SyncPrimitive::Kind");
}

SyncPool::SyncPool(int barriers, int counters, int parties,
                   const SyncPrimitiveOptions& options) {
  SPMD_CHECK(barriers >= 0 && counters >= 0, "negative pool bound");
  // Barriers stay untraced: the engine attributes barrier waits to plan
  // sites itself, exactly as it does for the unpooled shared barrier.
  SyncPrimitiveOptions barrierOptions = options;
  barrierOptions.tracer = nullptr;
  barrierOptions.traceSite = -1;
  for (int b = 0; b < barriers; ++b)
    barriers_.push_back(
        makeSyncPrimitive(SyncPrimitive::Kind::Barrier, parties,
                          barrierOptions));
  // Counters keep the tracer but no fixed site — pooled call sites pass
  // the plan site with each post/wait.
  SyncPrimitiveOptions counterOptions = options;
  counterOptions.traceSite = -1;
  for (int c = 0; c < counters; ++c)
    counters_.push_back(
        makeSyncPrimitive(SyncPrimitive::Kind::Counter, parties,
                          counterOptions));
}

Barrier& SyncPool::barrier(int phys) {
  SPMD_ASSERT(phys >= 0 && phys < barrierCount(),
              "physical barrier id out of pool range");
  return asBarrier(*barriers_[static_cast<std::size_t>(phys)]);
}

CounterSync& SyncPool::counter(int phys) {
  SPMD_ASSERT(phys >= 0 && phys < counterCount(),
              "physical counter id out of pool range");
  return asCounter(*counters_[static_cast<std::size_t>(phys)]);
}

void SyncPool::resetCounters() {
  for (auto& c : counters_) c->reset();
}

Barrier& asBarrier(SyncPrimitive& primitive) {
  SPMD_ASSERT(primitive.kind() == SyncPrimitive::Kind::Barrier,
              "expected a barrier primitive, got " + primitive.name());
  return static_cast<Barrier&>(primitive);
}

CounterSync& asCounter(SyncPrimitive& primitive) {
  SPMD_ASSERT(primitive.kind() == SyncPrimitive::Kind::Counter,
              "expected a counter primitive, got " + primitive.name());
  return static_cast<CounterSync&>(primitive);
}

}  // namespace spmd::rt
