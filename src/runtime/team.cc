#include "runtime/team.h"

#include "obs/trace.h"
#include "runtime/barrier.h"

namespace spmd::rt {

ThreadTeam::ThreadTeam(int nthreads) : nthreads_(nthreads) {
  SPMD_CHECK(nthreads >= 1, "team needs at least one thread");
  workers_.reserve(static_cast<std::size_t>(nthreads - 1));
  for (int tid = 1; tid < nthreads; ++tid)
    workers_.emplace_back([this, tid] { workerLoop(tid); });
}

ThreadTeam::~ThreadTeam() {
  shutdown_.store(true, std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  for (std::thread& w : workers_) w.join();
}

void ThreadTeam::run(const std::function<void(int)>& task) {
  SPMD_CHECK(!running_, "ThreadTeam::run is not reentrant");
  running_ = true;
  task_ = &task;
  // remaining_ may be relaxed: the release fence of the generation_ bump
  // below orders it before any worker can observe the new generation.
  remaining_.store(nthreads_ - 1, std::memory_order_relaxed);
  if (tracer_) tracer_->instant(0, obs::EventKind::Broadcast);
  generation_.fetch_add(1, std::memory_order_release);  // broadcast
  task(0);                                              // master participates
  const std::int64_t j0 = tracer_ ? tracer_->now() : 0;
  spinWait([&] {
    return remaining_.load(std::memory_order_acquire) == 0;
  });
  if (tracer_)
    tracer_->record(0, obs::EventKind::Join, /*site=*/-1, j0,
                    tracer_->now() - j0);
  task_ = nullptr;
  running_ = false;
}

void ThreadTeam::workerLoop(int tid) {
  std::uint64_t seen = 0;
  while (true) {
    spinWait([&] {
      return generation_.load(std::memory_order_acquire) > seen;
    });
    seen = generation_.load(std::memory_order_acquire);
    if (shutdown_.load(std::memory_order_relaxed)) return;
    (*task_)(tid);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace spmd::rt
