// Machine topology probe for topology-aware synchronization.
//
// Hierarchical barriers need a cluster fan-out: how many threads share a
// fast synchronization domain (a package / die / core complex) before
// arrivals have to cross the slower interconnect.  Topology models the
// machine as `packages x coresPerPackage` — deliberately two-level, which
// matches both the sysfs physical_package_id partition and the clustered
// many-core targets in the literature (per-cluster barrier combining into
// a global one).  The probe reads sysfs when available and degrades to
// hardware_concurrency; tests and the --topology=LxC flag can override it
// so cluster decisions are deterministic on any host.
#pragma once

#include <optional>
#include <string>

namespace spmd::rt {

struct Topology {
  /// 0 means "unspecified": the factory substitutes the detected machine
  /// topology.  A specified topology (from --topology= or a test) is used
  /// verbatim.
  int packages = 0;
  int coresPerPackage = 0;

  bool specified() const { return packages > 0 && coresPerPackage > 0; }
  int totalCores() const { return packages * coresPerPackage; }

  /// Renders as "LxC" ("2x8"), the same shape --topology= parses.
  std::string toString() const;

  /// Parses "LxC" with L,C >= 1 ("1x4", "2x8"); anything else is nullopt.
  static std::optional<Topology> parse(const std::string& text);

  /// The probed machine topology, detected once and cached.  Packages
  /// come from sysfs physical_package_id when readable; otherwise a
  /// flat single package of hardware_concurrency cores (at least 1x1).
  static const Topology& detected();

  /// One-line explanation of a degraded detection (sysfs missing or
  /// partially readable, as in containers and non-Linux hosts), empty
  /// when the probe read every CPU.  Computed once with detected():
  /// callers that want to surface the degradation emit this single note
  /// instead of warning per thread or per primitive.
  static const std::string& detectionNote();

  /// The probe itself, parameterized for tests: reads
  /// `<sysfsRoot>/cpu<N>/topology/physical_package_id` for N in
  /// [0, cpus).  Any unreadable CPU degrades to a flat 1 x cpus fallback
  /// and sets `note` (when non-null) to a one-line diagnostic.  Cores
  /// per package is the ceiling of cpus/packages so totalCores() never
  /// undercounts the machine (7 CPUs across 2 packages is 2x4, not the
  /// 2x3 a floor division would claim).
  static Topology probeFrom(const std::string& sysfsRoot, int cpus,
                            std::string* note = nullptr);

  /// Cluster fan-out for a hierarchical primitive over `parties` threads:
  /// threads [k*size, (k+1)*size) form cluster k (the last cluster may be
  /// smaller when size does not divide parties).
  ///
  ///   * Multi-package machine with packages small enough to matter:
  ///     one cluster per package (size = coresPerPackage), so leaf
  ///     arrivals stay inside a package and only cluster representatives
  ///     cross the interconnect.
  ///   * Single package (or parties within one package): ceil(sqrt(P)),
  ///     which balances leaf contention against root contention.
  ///
  /// Always in [1, parties].
  int clusterSizeFor(int parties) const;
};

}  // namespace spmd::rt
