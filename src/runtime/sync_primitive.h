// The unified runtime synchronization interface.
//
// The optimizer's plan places two kinds of synchronization (core's
// SyncPoint): all-processor barriers and pairwise counters.  At run time
// each kind can have several implementations (centralized vs combining-
// tree barriers today; MCS / dissemination / hardware barriers are
// drop-in candidates).  SyncPrimitive is the common base, and
// makeSyncPrimitive is the single seam through which the executor and the
// verifier obtain implementations — swapping a barrier algorithm touches
// the factory, not the execution engine.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "runtime/topology.h"
#include "support/diag.h"

namespace spmd::obs {
class Tracer;
}

namespace spmd::rt {

class Barrier;
class CounterSync;

/// How a waiter behaves while its condition is false (see rt::spinWait).
/// Backoff is the default: exponentially growing pause bursts keep the
/// watched cache line out of the coherence crossfire and stop starving
/// the producer when threads outnumber cores.
enum class SpinPolicy : std::uint8_t {
  Pause,    ///< fixed-rate pause loop, yield every 64th check
  Backoff,  ///< exponential pause backoff, then yield once saturated
  Yield,    ///< yield between every check (heavy oversubscription)
};

const char* spinPolicyName(SpinPolicy policy);

/// Parses "pause" / "backoff" / "yield" (the --spin= flag values).
std::optional<SpinPolicy> parseSpinPolicy(const std::string& text);

class SyncPrimitive {
 public:
  /// The plan-level role this primitive realizes (mirrors
  /// core::SyncPoint::Kind, without depending on core).
  enum class Kind { Barrier, Counter };

  virtual ~SyncPrimitive() = default;

  virtual Kind kind() const = 0;
  virtual int parties() const = 0;

  /// Stable implementation name ("central-barrier", "tree-barrier",
  /// "counter") for reports and conformance tests.
  virtual std::string name() const = 0;

  /// Restores the primitive to its initial state so it can be reused for
  /// a fresh sequence of episodes.  Callers must ensure no thread is
  /// inside the primitive.  Episode-based primitives (sense-reversing and
  /// tree barriers) are self-cleaning, so their reset is a no-op.
  virtual void reset() {}

  /// Attaches an event tracer (null detaches).  `site` labels this
  /// primitive's events (the plan's counter sync id; -1 for anonymous
  /// sites like the shared region barrier).  With no tracer attached the
  /// synchronization fast paths pay exactly one predicted branch.
  void setTrace(obs::Tracer* tracer, std::int32_t site = -1) {
    tracer_ = tracer;
    traceSite_ = site;
  }
  obs::Tracer* tracer() const { return tracer_; }
  std::int32_t traceSite() const { return traceSite_; }

 protected:
  obs::Tracer* tracer_ = nullptr;
  std::int32_t traceSite_ = -1;
};

const char* syncKindName(SyncPrimitive::Kind kind);

/// Which barrier algorithm the factory instantiates for Kind::Barrier.
/// Hier also selects the clustered counter variant for Kind::Counter —
/// one knob chooses the whole topology-aware primitive family.
enum class BarrierAlgorithm {
  Central,  ///< sense-reversing centralized barrier (default)
  Tree,     ///< software combining tree, O(log P) arrival depth
  Hier,     ///< topology-aware: per-cluster leaves combining into a root
};

const char* barrierAlgorithmName(BarrierAlgorithm algorithm);

/// Parses "central" / "tree" / "hier" (the --barrier= flag values).
std::optional<BarrierAlgorithm> parseBarrierAlgorithm(const std::string& text);

/// Runtime synchronization selection, carried from the driver through the
/// executor to the factory.
struct SyncPrimitiveOptions {
  BarrierAlgorithm barrierAlgorithm = BarrierAlgorithm::Central;
  SpinPolicy spinPolicy = SpinPolicy::Backoff;

  /// True when the user picked the spin policy explicitly (--spin=);
  /// suppresses the oversubscription downgrade in effectiveSpinPolicy.
  bool spinPolicyExplicit = false;

  /// Cluster shape for the Hier family.  Default (unspecified) lets the
  /// factory substitute the probed machine topology; --topology=LxC and
  /// tests pin it for deterministic fan-out.
  Topology topology;

  /// Event tracer attached to every primitive the factory creates (null:
  /// tracing off, the default); `traceSite` labels the created primitive's
  /// events (see SyncPrimitive::setTrace).
  obs::Tracer* tracer = nullptr;
  std::int32_t traceSite = -1;
};

/// The spin policy the factory will actually install for a primitive of
/// `parties` threads: the requested policy, downgraded to Yield when the
/// team oversubscribes the machine (parties > hardware_concurrency) and
/// the policy was not explicit.  A pause/backoff spinner that outnumbers
/// the cores burns whole scheduler quanta keeping the very threads it
/// waits for off-core; yielding is strictly better there.
SpinPolicy effectiveSpinPolicy(const SyncPrimitiveOptions& options,
                               int parties);

/// True when effectiveSpinPolicy downgraded the requested policy (drives
/// the driver's diagnostic note).
bool spinPolicyDowngraded(const SyncPrimitiveOptions& options, int parties);

/// The factory: maps a plan-level sync kind + options to a concrete
/// primitive.
std::unique_ptr<SyncPrimitive> makeSyncPrimitive(
    SyncPrimitive::Kind kind, int parties,
    const SyncPrimitiveOptions& options = SyncPrimitiveOptions());

/// Convenience for call sites that statically need a barrier (the region
/// join, the fork-join base executor).
std::unique_ptr<Barrier> makeBarrier(
    int parties, const SyncPrimitiveOptions& options = SyncPrimitiveOptions());

/// Checked downcasts for plan interpretation (the executor knows the kind
/// from the SyncPoint it is realizing).
Barrier& asBarrier(SyncPrimitive& primitive);
CounterSync& asCounter(SyncPrimitive& primitive);

/// A fixed file of physical sync primitives, acquired by physical id —
/// the runtime realization of core::PhysicalSyncMap.  In pooled mode the
/// engine does not construct one primitive per logical sync point; it
/// indexes this pool with the ids the allocator assigned, so the number
/// of live primitives is bounded by (K, M) no matter how many logical
/// sync points the plan carries.
///
/// Barriers are created untraced (the engine attributes barrier waits to
/// plan sites itself); counters keep the tracer but are created with an
/// anonymous site — a physical slot serves many logical points, so call
/// sites pass the plan site per call (CounterSync's explicit-site
/// overloads), keeping pooled trace output label-identical to unpooled.
class SyncPool {
 public:
  SyncPool(int barriers, int counters, int parties,
           const SyncPrimitiveOptions& options);

  int barrierCount() const { return static_cast<int>(barriers_.size()); }
  int counterCount() const { return static_cast<int>(counters_.size()); }

  Barrier& barrier(int phys);
  CounterSync& counter(int phys);

  /// Resets every counter slot (between region executions; barriers are
  /// episode-based and self-cleaning).  Caller must ensure no thread is
  /// inside a primitive.
  void resetCounters();

 private:
  std::vector<std::unique_ptr<SyncPrimitive>> barriers_;
  std::vector<std::unique_ptr<SyncPrimitive>> counters_;
};

}  // namespace spmd::rt
