#include "runtime/barrier.h"

#include "obs/trace.h"

namespace spmd::rt {

void CentralBarrier::arrive(int tid, FunctionRef<void()> serial) {
  const std::int64_t t0 = tracer_ ? tracer_->now() : 0;
  std::uint64_t mySense = sense_.load(std::memory_order_relaxed) + 1;
  if (count_.fetch_add(1, std::memory_order_acq_rel) == parties_ - 1) {
    // Last arrival: serial section, then reset and release.
    if (serial) {
      const std::int64_t s0 = tracer_ ? tracer_->now() : 0;
      serial();
      if (tracer_)
        tracer_->record(tid, obs::EventKind::BarrierSerial, traceSite_, s0,
                        tracer_->now() - s0);
    }
    count_.store(0, std::memory_order_relaxed);
    sense_.store(mySense, std::memory_order_release);
  } else {
    spinWait([&] {
      return sense_.load(std::memory_order_acquire) >= mySense;
    }, spin_);
  }
  if (tracer_)
    tracer_->record(tid, obs::EventKind::BarrierWait, traceSite_, t0,
                    tracer_->now() - t0);
}

HierarchicalBarrier::HierarchicalBarrier(int parties, int clusterSize,
                                         SpinPolicy spin)
    : parties_(parties),
      clusterSize_(std::max(1, std::min(clusterSize, parties))),
      spin_(spin) {
  SPMD_CHECK(parties >= 1, "barrier needs at least one party");
  const int clusters = (parties_ + clusterSize_ - 1) / clusterSize_;
  leafCount_ = std::vector<PaddedAtomicU64>(static_cast<std::size_t>(clusters));
}

void HierarchicalBarrier::arrive(int tid, FunctionRef<void()> serial) {
  const std::int64_t t0 = tracer_ ? tracer_->now() : 0;
  const std::uint64_t mySense = sense_.load(std::memory_order_relaxed) + 1;
  const auto cluster = static_cast<std::size_t>(tid / clusterSize_);
  const bool lastInCluster =
      leafCount_[cluster].value.fetch_add(1, std::memory_order_acq_rel) ==
      static_cast<std::uint64_t>(
          clusterParties(static_cast<int>(cluster)) - 1);
  if (lastInCluster &&
      rootCount_.fetch_add(1, std::memory_order_acq_rel) == clusters() - 1) {
    // Globally last arrival: serial section, reset both levels, release.
    if (serial) {
      const std::int64_t s0 = tracer_ ? tracer_->now() : 0;
      serial();
      if (tracer_)
        tracer_->record(tid, obs::EventKind::BarrierSerial, traceSite_, s0,
                        tracer_->now() - s0);
    }
    for (auto& leaf : leafCount_)
      leaf.value.store(0, std::memory_order_relaxed);
    rootCount_.store(0, std::memory_order_relaxed);
    sense_.store(mySense, std::memory_order_release);
  } else {
    // Flat release: everyone else — cluster representatives included —
    // spins on the one global sense.
    spinWait([&] {
      return sense_.load(std::memory_order_acquire) >= mySense;
    }, spin_);
  }
  if (tracer_)
    tracer_->record(tid, obs::EventKind::BarrierWait, traceSite_, t0,
                    tracer_->now() - t0);
}

TreeBarrier::TreeBarrier(int parties, SpinPolicy spin)
    : parties_(parties), spin_(spin) {
  SPMD_CHECK(parties >= 1, "barrier needs at least one party");
  arrived_ = std::vector<PaddedAtomicU64>(static_cast<std::size_t>(parties));
  release_ = std::vector<PaddedAtomicU64>(static_cast<std::size_t>(parties));
  localEpoch_ = std::vector<PaddedU64>(static_cast<std::size_t>(parties));
}

void TreeBarrier::arrive(int tid, FunctionRef<void()> serial) {
  const std::int64_t t0 = tracer_ ? tracer_->now() : 0;
  // Tournament tree over thread ids: thread t waits for children 2t+1 and
  // 2t+2, signals parent (t-1)/2; thread 0 is the root and releases.
  std::uint64_t epoch = ++localEpoch_[static_cast<std::size_t>(tid)].value;
  int left = 2 * tid + 1;
  int right = 2 * tid + 2;
  if (left < parties_)
    spinWait([&] {
      return arrived_[static_cast<std::size_t>(left)].value.load(
                 std::memory_order_acquire) >= epoch;
    }, spin_);
  if (right < parties_)
    spinWait([&] {
      return arrived_[static_cast<std::size_t>(right)].value.load(
                 std::memory_order_acquire) >= epoch;
    }, spin_);
  if (tid != 0) {
    arrived_[static_cast<std::size_t>(tid)].value.store(
        epoch, std::memory_order_release);
    spinWait([&] {
      return release_[static_cast<std::size_t>(tid)].value.load(
                 std::memory_order_acquire) >= epoch;
    }, spin_);
  } else if (serial) {
    // Root: every thread has arrived, none is released yet.
    const std::int64_t s0 = tracer_ ? tracer_->now() : 0;
    serial();
    if (tracer_)
      tracer_->record(tid, obs::EventKind::BarrierSerial, traceSite_, s0,
                      tracer_->now() - s0);
  }
  // Release children.
  if (left < parties_)
    release_[static_cast<std::size_t>(left)].value.store(
        epoch, std::memory_order_release);
  if (right < parties_)
    release_[static_cast<std::size_t>(right)].value.store(
        epoch, std::memory_order_release);
  if (tracer_)
    tracer_->record(tid, obs::EventKind::BarrierWait, traceSite_, t0,
                    tracer_->now() - t0);
}

}  // namespace spmd::rt
