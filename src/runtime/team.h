// A persistent worker team implementing the hybrid fork-join/SPMD model.
//
// The master thread executes sequential program parts; run() broadcasts a
// task to all team members (the master participates as processor 0) and
// returns when every member finished — the fork-join join.  Workers park
// in a spin-then-yield loop between tasks, so consecutive SPMD regions
// reuse the same threads ("threads are always active" — paper §2).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "support/diag.h"

namespace spmd::obs {
class Tracer;
}

namespace spmd::rt {

/// Dynamic synchronization counts, the paper's primary metric.
struct SyncCounts {
  std::uint64_t barriers = 0;      ///< barrier episodes executed
  std::uint64_t broadcasts = 0;    ///< task broadcasts (forks/region entries)
  std::uint64_t counterPosts = 0;  ///< counter post operations (all procs)
  std::uint64_t counterWaits = 0;  ///< counter wait operations (all procs)

  SyncCounts& operator+=(const SyncCounts& o) {
    barriers += o.barriers;
    broadcasts += o.broadcasts;
    counterPosts += o.counterPosts;
    counterWaits += o.counterWaits;
    return *this;
  }
};

class ThreadTeam {
 public:
  explicit ThreadTeam(int nthreads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  int size() const { return nthreads_; }

  /// Broadcasts `task` to all processors (master runs it as tid 0) and
  /// joins.  The join is release-acquire: worker effects are visible to
  /// the master afterwards.  Not reentrant: `task` must not call run() on
  /// the same team (checked).
  void run(const std::function<void(int)>& task);

  /// Attaches an event tracer (null detaches).  While attached, run()
  /// records a Broadcast instant at the fork and a Join span covering the
  /// master's wait for the last worker.  Call only between run()s.
  void setTracer(obs::Tracer* tracer) { tracer_ = tracer; }
  obs::Tracer* tracer() const { return tracer_; }

  /// Statically chunked parallel loop: index i runs on thread i % size().
  /// Blocks until every index in [0, n) completed; `body` must be safe to
  /// call concurrently for distinct indices.
  template <class Body>
  void parallelFor(std::size_t n, Body&& body) {
    run([&](int tid) {
      for (std::size_t i = static_cast<std::size_t>(tid); i < n;
           i += static_cast<std::size_t>(nthreads_))
        body(i);
    });
  }

 private:
  void workerLoop(int tid);

  int nthreads_;
  std::vector<std::thread> workers_;
  const std::function<void(int)>* task_ = nullptr;
  // Broadcast protocol: master publishes task_ then bumps generation_
  // (release); workers observe the bump (acquire), so the task pointer and
  // the data it captures are visible.  Join: each worker decrements
  // remaining_ (acq_rel) after finishing; the master's acquire load of 0
  // therefore sees all worker effects.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> remaining_{0};
  std::atomic<bool> shutdown_{false};
  bool running_ = false;  ///< master-only reentrancy guard
  obs::Tracer* tracer_ = nullptr;
};

}  // namespace spmd::rt
