// Barrier implementations for the SPMD runtime.
//
// CentralBarrier is the default: a sense-reversing centralized barrier
// (one atomic counter + a per-episode sense flag).  TreeBarrier is a
// software combining tree whose arrival cost grows logarithmically; the
// barrier-cost microbenchmark (bench_fig_barriercost) compares the two
// against counter pairs — the cost gap is the paper's motivation ([10]):
// "executing a barrier has some run-time overhead that typically grows
// quickly as the number of processors increases."
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/sync_primitive.h"
#include "support/diag.h"
#include "support/function_ref.h"

namespace spmd::rt {

/// Pad to a cache line to avoid false sharing between per-thread slots.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> value{0};
};

/// Cache-line-padded plain counter for per-thread private state that lives
/// in a shared vector (e.g. TreeBarrier's local epochs).  Without the
/// padding, adjacent threads' counters share a line and every epoch bump
/// invalidates the neighbours' copies — false sharing on the barrier fast
/// path.
struct alignas(64) PaddedU64 {
  std::uint64_t value = 0;
};
static_assert(sizeof(PaddedU64) == 64 && alignof(PaddedU64) == 64,
              "per-thread counters must each own a full cache line");

/// One CPU relaxation hint (x86 `pause`, aarch64 `yield`); a plain
/// compiler barrier elsewhere so the spin loop is never optimized into a
/// pure load loop.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Bounded spin-then-yield wait loop shared by all synchronization
/// primitives (oversubscribed hosts need the yield to make progress).
/// Takes the predicate as a template parameter so the hot spin loop calls
/// it directly — a std::function here would add a type-erased indirect
/// call (and a possible allocation at every wait site) on the
/// synchronization fast path.
///
/// The policy controls how aggressively the waiter hammers the watched
/// cache line (see SpinPolicy in sync_primitive.h):
///   * Pause   — fixed-rate pause loop, yield every 64th check.
///   * Backoff — exponentially growing pause bursts (1, 2, 4, ... up to
///     1024 relax hints between predicate checks), then a yield per
///     round once saturated.  Re-checking less often keeps the watched
///     line in the owner's cache (fewer coherence misses on its writer)
///     and frees the core under oversubscription.
///   * Yield   — yield between every check (heavily oversubscribed hosts).
template <class Pred>
inline void spinWait(Pred&& done, SpinPolicy policy = SpinPolicy::Backoff) {
  switch (policy) {
    case SpinPolicy::Pause: {
      int spins = 0;
      while (!done()) {
        if (++spins < 64) {
          cpuRelax();
        } else {
          std::this_thread::yield();
          spins = 0;
        }
      }
      return;
    }
    case SpinPolicy::Backoff: {
      std::uint32_t burst = 1;
      while (!done()) {
        for (std::uint32_t k = 0; k < burst; ++k) cpuRelax();
        if (burst < 1024) {
          burst <<= 1;
        } else {
          std::this_thread::yield();
        }
      }
      return;
    }
    case SpinPolicy::Yield: {
      while (!done()) std::this_thread::yield();
      return;
    }
  }
  SPMD_UNREACHABLE("bad SpinPolicy");
}

class Barrier : public SyncPrimitive {
 public:
  /// Blocks until all `parties` threads arrive.  Thread ids in [0, parties).
  ///
  /// If `serial` is non-empty, the releasing thread runs it exactly once
  /// per episode, after every thread has arrived and before any is
  /// released — a serial section usable for publishing reduction results
  /// and master-produced scalars race-free (every thread should pass an
  /// equivalent callback; which one runs is unspecified).  The callable is
  /// taken by FunctionRef: no allocation on the synchronization path.
  virtual void arrive(int tid, FunctionRef<void()> serial) = 0;
  void arrive(int tid) { arrive(tid, FunctionRef<void()>()); }

  Kind kind() const final { return Kind::Barrier; }
};

/// Sense-reversing centralized barrier.
class CentralBarrier final : public Barrier {
 public:
  explicit CentralBarrier(int parties,
                          SpinPolicy spin = SpinPolicy::Backoff)
      : parties_(parties), spin_(spin) {
    SPMD_CHECK(parties >= 1, "barrier needs at least one party");
  }

  using Barrier::arrive;
  void arrive(int tid, FunctionRef<void()> serial) override;
  int parties() const override { return parties_; }
  std::string name() const override { return "central-barrier"; }

 private:
  int parties_;
  SpinPolicy spin_;
  std::atomic<int> count_{0};
  // Episode number doubles as the "sense": arrivals compute their target
  // episode from the current value, so no per-thread state is needed.
  std::atomic<std::uint64_t> sense_{0};
};

/// Topology-aware hierarchical barrier: threads arrive at a per-cluster
/// leaf counter (cluster k = threads [k*clusterSize, (k+1)*clusterSize)),
/// the last arrival in each cluster combines into a root counter, and the
/// globally last arrival runs the serial section and releases everyone by
/// bumping a single sense-reversing episode number.
///
/// The arrival side is what clustering buys: each leaf counter is written
/// by at most clusterSize threads, so on a multi-package machine the
/// coherence storm of P threads hammering one line becomes (P/C) lines of
/// C local writers plus one root line of P/C representative writers.  The
/// release side is deliberately flat — one global sense every waiter
/// spins on locally — so the wake-up path costs exactly what
/// CentralBarrier's does (a cascaded per-cluster release would add a full
/// scheduling round per level on oversubscribed hosts).
class HierarchicalBarrier final : public Barrier {
 public:
  /// `clusterSize` need not divide `parties`; the last cluster is simply
  /// smaller.  clusterSize is clamped to [1, parties].
  HierarchicalBarrier(int parties, int clusterSize,
                      SpinPolicy spin = SpinPolicy::Backoff);

  using Barrier::arrive;
  void arrive(int tid, FunctionRef<void()> serial) override;
  int parties() const override { return parties_; }
  std::string name() const override { return "hier-barrier"; }
  int clusterSize() const { return clusterSize_; }
  int clusters() const { return static_cast<int>(leafCount_.size()); }

 private:
  int clusterParties(int cluster) const {
    const int lo = cluster * clusterSize_;
    return std::min(clusterSize_, parties_ - lo);
  }

  int parties_;
  int clusterSize_;
  SpinPolicy spin_;
  std::vector<PaddedAtomicU64> leafCount_;  // arrivals per cluster
  std::atomic<int> rootCount_{0};           // clusters fully arrived
  // Episode number doubles as the sense, exactly as in CentralBarrier.
  std::atomic<std::uint64_t> sense_{0};
};

/// Software combining-tree barrier (arity 2): arrival propagates up a
/// tournament tree, release fans out down.
class TreeBarrier final : public Barrier {
 public:
  explicit TreeBarrier(int parties, SpinPolicy spin = SpinPolicy::Backoff);

  using Barrier::arrive;
  void arrive(int tid, FunctionRef<void()> serial) override;
  int parties() const override { return parties_; }
  std::string name() const override { return "tree-barrier"; }

 private:
  int parties_;
  SpinPolicy spin_;
  // childDone_[node] counts arrived children; release epoch fans out.
  std::vector<PaddedAtomicU64> arrived_;
  std::vector<PaddedAtomicU64> release_;
  // Padded: each thread bumps its own epoch every episode, and unpadded
  // epochs false-share cache lines across threads.
  std::vector<PaddedU64> localEpoch_;
};

}  // namespace spmd::rt
