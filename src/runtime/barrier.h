// Barrier implementations for the SPMD runtime.
//
// CentralBarrier is the default: a sense-reversing centralized barrier
// (one atomic counter + a per-episode sense flag).  TreeBarrier is a
// software combining tree whose arrival cost grows logarithmically; the
// barrier-cost microbenchmark (bench_fig_barriercost) compares the two
// against counter pairs — the cost gap is the paper's motivation ([10]):
// "executing a barrier has some run-time overhead that typically grows
// quickly as the number of processors increases."
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/sync_primitive.h"
#include "support/diag.h"

namespace spmd::rt {

/// Pad to a cache line to avoid false sharing between per-thread slots.
struct alignas(64) PaddedAtomicU64 {
  std::atomic<std::uint64_t> value{0};
};

/// Bounded spin-then-yield wait loop shared by all synchronization
/// primitives (oversubscribed hosts need the yield to make progress).
/// Takes the predicate as a template parameter so the hot spin loop calls
/// it directly — a std::function here would add a type-erased indirect
/// call (and a possible allocation at every wait site) on the
/// synchronization fast path.
template <class Pred>
inline void spinWait(Pred&& done) {
  int spins = 0;
  while (!done()) {
    if (++spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
      __builtin_ia32_pause();
#endif
    } else {
      std::this_thread::yield();
      spins = 0;
    }
  }
}

class Barrier : public SyncPrimitive {
 public:
  /// Blocks until all `parties` threads arrive.  Thread ids in [0, parties).
  ///
  /// If `serial` is non-null, the releasing thread runs `*serial` exactly
  /// once per episode, after every thread has arrived and before any is
  /// released — a serial section usable for publishing reduction results
  /// and master-produced scalars race-free (every thread should pass an
  /// equivalent callback; which one runs is unspecified).
  virtual void arrive(int tid, const std::function<void()>* serial) = 0;
  void arrive(int tid) { arrive(tid, nullptr); }

  Kind kind() const final { return Kind::Barrier; }
};

/// Sense-reversing centralized barrier.
class CentralBarrier final : public Barrier {
 public:
  explicit CentralBarrier(int parties) : parties_(parties) {
    SPMD_CHECK(parties >= 1, "barrier needs at least one party");
  }

  using Barrier::arrive;
  void arrive(int tid, const std::function<void()>* serial) override;
  int parties() const override { return parties_; }
  std::string name() const override { return "central-barrier"; }

 private:
  int parties_;
  std::atomic<int> count_{0};
  // Episode number doubles as the "sense": arrivals compute their target
  // episode from the current value, so no per-thread state is needed.
  std::atomic<std::uint64_t> sense_{0};
};

/// Software combining-tree barrier (arity 2): arrival propagates up a
/// tournament tree, release fans out down.
class TreeBarrier final : public Barrier {
 public:
  explicit TreeBarrier(int parties);

  using Barrier::arrive;
  void arrive(int tid, const std::function<void()>* serial) override;
  int parties() const override { return parties_; }
  std::string name() const override { return "tree-barrier"; }

 private:
  int parties_;
  // childDone_[node] counts arrived children; release epoch fans out.
  std::vector<PaddedAtomicU64> arrived_;
  std::vector<PaddedAtomicU64> release_;
  std::vector<std::uint64_t> localEpoch_;
};

}  // namespace spmd::rt
