// Counter synchronization (paper §2): the cheaper alternative to barriers
// for producer-consumer patterns.
//
// A CounterSync holds one padded atomic slot per processor.  Each processor
// posts its own slot (incrementing it once per occurrence of the sync
// point) and waits until designated producers' slots reach the same
// occurrence number.  "Counters are similar to event synchronization [20]
// but are more flexible... we also reduce overhead by only synchronizing
// once between each pair of processors."
#pragma once

#include "obs/trace.h"
#include "runtime/barrier.h"

namespace spmd::rt {

class CounterSync : public SyncPrimitive {
 public:
  explicit CounterSync(int parties, SpinPolicy spin = SpinPolicy::Backoff)
      : slots_(static_cast<std::size_t>(parties)), spin_(spin) {
    SPMD_CHECK(parties >= 1, "counter needs at least one party");
  }

  Kind kind() const override { return Kind::Counter; }
  int parties() const override { return static_cast<int>(slots_.size()); }
  std::string name() const override { return "counter"; }

  /// Producer side: publish that `tid` completed its `occurrence`-th visit.
  void post(int tid, std::uint64_t occurrence) {
    slots_[static_cast<std::size_t>(tid)].value.store(
        occurrence, std::memory_order_release);
    if (tracer_) tracer_->instant(tid, obs::EventKind::CounterPost, traceSite_);
  }

  /// Consumer side: block until `producer` has posted `occurrence`.
  void wait(int producer, std::uint64_t occurrence) const {
    const auto& slot = slots_[static_cast<std::size_t>(producer)].value;
    spinWait([&] {
      return slot.load(std::memory_order_acquire) >= occurrence;
    }, spin_);
  }

  /// Traced consumer wait: identical blocking semantics, but records the
  /// stall as a CounterWait span attributed to `waiter` (the thread doing
  /// the waiting — the 2-arg overload only knows the producer's id), with
  /// the producer's id in the event's aux so an offline analysis can pair
  /// the stall with the post that released it.
  void wait(int waiter, int producer, std::uint64_t occurrence) const {
    if (!tracer_) {
      wait(producer, occurrence);
      return;
    }
    const std::int64_t t0 = tracer_->now();
    wait(producer, occurrence);
    tracer_->record(waiter, obs::EventKind::CounterWait, traceSite_, t0,
                    tracer_->now() - t0,
                    static_cast<std::int16_t>(producer));
  }

  /// Explicit-site producer post, for pooled counters: one physical slot
  /// serves many logical sync points, so the plan site travels with the
  /// call instead of living in traceSite_.  Blocking semantics identical
  /// to the 2-arg overload.
  void post(int tid, std::uint64_t occurrence, std::int32_t site) {
    slots_[static_cast<std::size_t>(tid)].value.store(
        occurrence, std::memory_order_release);
    if (tracer_) tracer_->instant(tid, obs::EventKind::CounterPost, site);
  }

  /// Explicit-site traced wait (the pooled counterpart of the 3-arg
  /// overload above).
  void wait(int waiter, int producer, std::uint64_t occurrence,
            std::int32_t site) const {
    if (!tracer_) {
      wait(producer, occurrence);
      return;
    }
    const std::int64_t t0 = tracer_->now();
    wait(producer, occurrence);
    tracer_->record(waiter, obs::EventKind::CounterWait, site, t0,
                    tracer_->now() - t0,
                    static_cast<std::int16_t>(producer));
  }

  /// Resets all slots (between region executions; caller must ensure no
  /// thread is inside the counter).
  void reset() override {
    for (auto& s : slots_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  std::vector<PaddedAtomicU64> slots_;
  SpinPolicy spin_;
};

/// Topology-aware counter: post/wait semantics (and therefore SyncCounts
/// and trace labels) are byte-identical to CounterSync — the whole class
/// is a construction-time spin-policy choice.  When the parties span more
/// than one cluster, a waiter's watched slot usually lives in another
/// cluster's cache, so a tight Pause loop turns into cross-interconnect
/// coherence traffic; the clustered variant escalates Pause to Backoff in
/// that case (explicitly chosen Yield/Backoff are kept: they are already
/// interconnect-friendly).
class ClusteredCounterSync final : public CounterSync {
 public:
  ClusteredCounterSync(int parties, int clusterSize,
                       SpinPolicy spin = SpinPolicy::Backoff)
      : CounterSync(parties,
                    spansClusters(parties, clusterSize) &&
                            spin == SpinPolicy::Pause
                        ? SpinPolicy::Backoff
                        : spin),
        clusterSize_(std::max(1, std::min(clusterSize, parties))) {}

  std::string name() const override { return "clustered-counter"; }
  int clusterSize() const { return clusterSize_; }

 private:
  static bool spansClusters(int parties, int clusterSize) {
    return clusterSize >= 1 && parties > clusterSize;
  }

  int clusterSize_;
};

}  // namespace spmd::rt
